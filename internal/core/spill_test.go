package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/trace"
)

// TestSpillKillResumeTornTailBitIdentical is the crash-safety statement
// of the sidecar: a run killed after its last checkpoint leaves frames
// beyond the snapshot offset plus a torn partial frame on disk, and the
// resumed run must truncate both and finish bit-identical to the
// uninterrupted one — including the final sidecar bytes.
func TestSpillKillResumeTornTailBitIdentical(t *testing.T) {
	dev := device.Serial()
	eval, init := engineFixture(t, 6, 60, 801, dev)
	s := NewGMH(eval, dev, 3)
	dir := t.TempDir()
	side := filepath.Join(dir, "job.trace")
	cfg := ChainConfig{Theta: 1.0, Burnin: 10, Samples: 120, Seed: 802,
		Trace: &TraceSpec{Path: side}}

	refCfg := cfg
	refCfg.Trace = &TraceSpec{Path: filepath.Join(dir, "uninterrupted.trace")}
	want, err := s.Run(init, refCfg)
	if err != nil {
		t.Fatal(err)
	}

	run, err := s.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSnapshot(t, run)
	if snap.TraceRef == nil {
		t.Fatal("spilling snapshot carries no sidecar reference")
	}
	// The "crash": the run keeps going past the checkpoint (the second
	// snapshot forces those frames onto disk), then dies mid-append,
	// leaving a torn partial frame at the tail.
	for i := 0; i < 6; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	mustSnapshot(t, run)
	f, err := os.OpenFile(side, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	torn, err := os.Stat(side)
	if err != nil {
		t.Fatal(err)
	}
	if torn.Size() <= snap.TraceRef.Offset {
		t.Fatalf("test setup: no post-snapshot tail on disk (%d <= %d)", torn.Size(), snap.TraceRef.Offset)
	}

	resumed, err := s.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.(SnapshotStepper).Restore(snap); err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sameTraces(t, "torn-tail resume", res.Samples, want.Samples, 0)

	// Frame boundaries encode the flush cadence, so the two sidecars
	// need not match byte-for-byte — but the draw streams they replay
	// must be bit-identical.
	got := replayAll(t, side)
	ref := replayAll(t, refCfg.Trace.Path)
	if len(got) != len(ref) {
		t.Fatalf("sidecar draw counts differ: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		if !bytes.Equal(got[i], ref[i]) {
			t.Fatalf("sidecar draw %d differs from uninterrupted run", i)
		}
	}
}

// replayAll decodes every durable draw of a sidecar into its raw bit
// patterns for exact comparison.
func replayAll(t *testing.T, path string) [][]byte {
	t.Helper()
	var draws [][]byte
	err := trace.Replay(path, trace.HeaderSize, -1, func(stat float64, ages []float64, logLik float64) error {
		rec := binary.LittleEndian.AppendUint64(nil, math.Float64bits(stat))
		for _, a := range ages {
			rec = binary.LittleEndian.AppendUint64(rec, math.Float64bits(a))
		}
		rec = binary.LittleEndian.AppendUint64(rec, math.Float64bits(logLik))
		draws = append(draws, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return draws
}

// TestInlineTraceMigratesToSpill covers the v1/v2 upgrade path: a
// snapshot from a build that kept traces in memory (inline TraceSnapshot,
// no sidecar) restores into a spilling run, which writes the replayed
// draws into a fresh sidecar and finishes bit-identical.
func TestInlineTraceMigratesToSpill(t *testing.T) {
	dev := device.Serial()
	eval, init := engineFixture(t, 6, 60, 811, dev)
	s := NewGMH(eval, dev, 3)
	cfg := ChainConfig{Theta: 1.0, Burnin: 10, Samples: 90, Seed: 812}

	want, err := s.Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}

	run, err := s.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSnapshot(t, run)
	if snap.Trace == nil || snap.TraceRef != nil {
		t.Fatalf("in-memory snapshot shape wrong: trace=%v ref=%v", snap.Trace != nil, snap.TraceRef != nil)
	}

	spillCfg := cfg
	spillCfg.Trace = &TraceSpec{Path: filepath.Join(t.TempDir(), "migrated.trace")}
	resumed, err := s.Start(init, spillCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.(SnapshotStepper).Restore(snap); err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sameTraces(t, "inline-to-spill migration", res.Samples, want.Samples, 0)
}

// TestRecorderSpillBoundedMemory: in spill mode the recorder
// accumulates nothing per draw — the sample set stays empty until
// finalize and the writer's buffer is bounded by the flush threshold.
func TestRecorderSpillBoundedMemory(t *testing.T) {
	const draws = 100_000
	cfg := ChainConfig{Theta: 1.0, Burnin: 100, Samples: draws - 100, Seed: 1,
		Trace: &TraceSpec{Path: filepath.Join(t.TempDir(), "bounded.trace")}}
	r, err := newRecorder(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ages := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	for k := 0; k < draws; k++ {
		if err := r.record(1000+float64(k%977), ages, -50.0); err != nil {
			t.Fatal(err)
		}
	}
	if r.set.Len() != 0 {
		t.Fatalf("spilling recorder materialized %d draws before finalize", r.set.Len())
	}
	if got := r.spill.PendingBytes(); got >= spillFlushBytes+1024 {
		t.Fatalf("writer buffer grew past the flush threshold: %d bytes", got)
	}
	if err := r.finalize(); err != nil {
		t.Fatal(err)
	}
	if r.set.Len() != draws {
		t.Fatalf("finalize replayed %d draws, want %d", r.set.Len(), draws)
	}
}

// BenchmarkRecorderSpill1M drives 10^6 draws through the spilling
// recorder per op. The alloc count reported must not scale with the
// draw count — recording is append-to-buffer plus periodic flush, so
// memory stays O(flush window) no matter how long the run.
func BenchmarkRecorderSpill1M(b *testing.B) {
	const draws = 1_000_000
	dir := b.TempDir()
	ages := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ChainConfig{Theta: 1.0, Burnin: 100, Samples: draws - 100, Seed: 1,
			Trace: &TraceSpec{Path: filepath.Join(dir, fmt.Sprintf("bench%d.trace", i))}}
		r, err := newRecorder(6, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < draws; k++ {
			if err := r.record(1000+float64(k%977), ages, -50.0); err != nil {
				b.Fatal(err)
			}
		}
		if err := r.spill.Flush(); err != nil {
			b.Fatal(err)
		}
		if err := r.spill.Close(); err != nil {
			b.Fatal(err)
		}
		if err := os.Remove(cfg.Trace.Path); err != nil {
			b.Fatal(err)
		}
	}
}
