package core

import (
	"math"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func TestBayesianFlatDataThetaFollowsPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// With a flat likelihood the joint posterior factorizes as
	// π(θ)·P(G|θ): the marginal of θ is exactly the log-uniform prior.
	// Check the mean of log θ and the median against the prior's.
	eval := flatEvaluator(t, 5, device.Serial())
	init := startTree(t, names(5), 1.0, 311)
	b := NewBayesian(eval, device.Serial())
	b.ThetaMin, b.ThetaMax = 0.1, 10.0
	b.ThetaStep = 0.8 // wide steps to traverse the support quickly
	res, err := b.Run(init, ChainConfig{Theta: 1.0, Burnin: 2000, Samples: 60000, Seed: 312})
	if err != nil {
		t.Fatal(err)
	}
	thetas := res.Thetas[res.Samples.Burnin:]
	var sumLog float64
	below := 0
	for _, th := range thetas {
		if th < b.ThetaMin || th > b.ThetaMax {
			t.Fatalf("theta %v escaped prior support", th)
		}
		sumLog += math.Log(th)
		if th < 1.0 { // geometric midpoint of [0.1, 10]
			below++
		}
	}
	meanLog := sumLog / float64(len(thetas))
	if math.Abs(meanLog) > 0.15 { // prior mean of log theta is 0
		t.Errorf("E[log theta] = %v, want ~0 under log-uniform prior", meanLog)
	}
	frac := float64(below) / float64(len(thetas))
	if math.Abs(frac-0.5) > 0.06 {
		t.Errorf("P(theta < geometric mid) = %v, want ~0.5", frac)
	}
}

func TestBayesianFlatDataGenealogyConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// Under the factorized flat-data posterior, E[SumKKT] =
	// (n-1)·E_prior[θ] with E[θ] = (max-min)/ln(max/min) for the
	// log-uniform prior.
	eval := flatEvaluator(t, 5, device.Serial())
	init := startTree(t, names(5), 1.0, 321)
	b := NewBayesian(eval, device.Serial())
	b.ThetaMin, b.ThetaMax = 0.5, 2.0
	b.ThetaStep = 0.5
	res, err := b.Run(init, ChainConfig{Theta: 1.0, Burnin: 2000, Samples: 60000, Seed: 322})
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Samples.PostBurninStats()
	var sum float64
	for _, v := range stats {
		sum += v
	}
	got := sum / float64(len(stats))
	eTheta := (2.0 - 0.5) / math.Log(4.0)
	want := 4 * eTheta // (n-1) = 4
	if math.Abs(got-want) > 0.08*want {
		t.Errorf("E[SumKKT] = %v, want %v (±8%%)", got, want)
	}
}

func TestBayesianPosteriorNearMLE(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline statistical test")
	}
	// On real data the posterior mean of θ should land in the same
	// region as the EM point estimate.
	trueTheta := 1.0
	aln, _, err := seqgen.SimulateData(8, 300, trueTheta, 331)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 332)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBayesian(eval, device.Serial())
	res, err := b.Run(init, ChainConfig{Theta: 1.0, Burnin: 3000, Samples: 20000, Seed: 333})
	if err != nil {
		t.Fatal(err)
	}
	post := res.PosteriorMeanTheta()
	if post < trueTheta/3 || post > trueTheta*3 {
		t.Errorf("posterior mean theta = %v, too far from truth %v", post, trueTheta)
	}
	if res.ThetaAccepted == 0 || res.TreeAccepted == 0 {
		t.Errorf("moves not mixing: theta %d/%d, tree %d/%d",
			res.ThetaAccepted, res.ThetaMoves, res.TreeAccepted, res.TreeMoves)
	}
}

func TestBayesianDeterministic(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1.0, 341)
	cfg := ChainConfig{Theta: 1.0, Burnin: 50, Samples: 300, Seed: 342}
	a, err := NewBayesian(eval, device.Serial()).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBayesian(eval, device.Serial()).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Thetas {
		if a.Thetas[i] != b.Thetas[i] {
			t.Fatalf("theta trace diverged at %d", i)
		}
	}
}

func TestBayesianValidation(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1.0, 351)
	b := NewBayesian(eval, device.Serial())
	b.ThetaMin, b.ThetaMax = 2.0, 1.0
	if _, err := b.Run(init, ChainConfig{Theta: 1.5, Samples: 10}); err == nil {
		t.Error("inverted prior range accepted")
	}
	c := NewBayesian(eval, device.Serial())
	c.ThetaMin, c.ThetaMax = 1.0, 2.0
	if _, err := c.Run(init, ChainConfig{Theta: 5.0, Samples: 10}); err == nil {
		t.Error("initial theta outside support accepted")
	}
	if _, err := NewBayesian(eval, device.Serial()).Run(init, ChainConfig{Theta: 0, Samples: 10}); err == nil {
		t.Error("bad chain config accepted")
	}
}

func TestBayesianThetaEvery(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1.0, 361)
	b := NewBayesian(eval, device.Serial())
	b.ThetaEvery = 5
	res, err := b.Run(init, ChainConfig{Theta: 1.0, Burnin: 0, Samples: 100, Seed: 362})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThetaMoves != 20 {
		t.Errorf("ThetaMoves = %d, want 20 with ThetaEvery=5 over 100 steps", res.ThetaMoves)
	}
}
