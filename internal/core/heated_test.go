package core

import (
	"fmt"
	"math"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func TestHeatedFlatDataSamplesPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// With a flat likelihood every tempered posterior equals the prior,
	// so the cold chain must reproduce Kingman moments and every swap
	// must be accepted.
	theta := 1.4
	dev := device.New(4)
	eval := flatEvaluator(t, 5, dev)
	init := startTree(t, names(5), theta, 211)
	h := NewHeated(eval, dev, 4)
	res, err := h.Run(init, ChainConfig{Theta: theta, Burnin: 500, Samples: 30000, Seed: 212})
	if err != nil {
		t.Fatal(err)
	}
	checkPriorMoments(t, "Heated", res.Samples, theta)
	if res.SwapAttempts == 0 {
		t.Fatal("no swap attempts recorded")
	}
	if res.Swaps != res.SwapAttempts {
		t.Errorf("flat data: %d of %d swaps accepted, want all", res.Swaps, res.SwapAttempts)
	}
}

func TestHeatedSingleChainMatchesPosterior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// P=1 heated sampling is plain MH; with more chains the cold chain
	// must still target the same posterior. Compare posterior means.
	aln, _, err := seqgen.SimulateData(6, 100, 1.0, 221)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(4)
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 222)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChainConfig{Theta: 1.0, Burnin: 2000, Samples: 20000, Seed: 223}
	mh, err := NewMH(eval).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	heated, err := NewHeated(eval, dev, 4).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	a := mean(mh.Samples.PostBurninStats())
	b := mean(heated.Samples.PostBurninStats())
	if math.Abs(a-b) > 0.10*math.Max(a, b) {
		t.Errorf("posterior mean SumKKT: MH %v vs heated %v (>10%% apart)", a, b)
	}
}

func TestHeatedDeterministicAcrossWorkers(t *testing.T) {
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, 231)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 232)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChainConfig{Theta: 1.0, Burnin: 50, Samples: 300, Seed: 233}
	var ref []float64
	for _, workers := range []int{1, 4} {
		dev := device.New(workers)
		eval, err := felsen.New(subst.NewJC69(), aln, dev)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewHeated(eval, dev, 3).Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Samples.Stats
			continue
		}
		for i := range ref {
			if res.Samples.Stats[i] != ref[i] {
				t.Fatalf("workers=%d: draw %d differs", workers, i)
			}
		}
	}
}

func TestHeatedSwapsImproveColdChainMobility(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// On real data the heated ladder should accept a healthy fraction of
	// swaps (the ladder is doing work) without degrading the posterior.
	aln, _, err := seqgen.SimulateData(8, 200, 1.0, 241)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(4)
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 242)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeated(eval, dev, 4)
	res, err := h.Run(init, ChainConfig{Theta: 1.0, Burnin: 500, Samples: 5000, Seed: 243})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Swaps) / float64(res.SwapAttempts)
	if rate <= 0.05 {
		t.Errorf("swap acceptance %v suspiciously low: ladder not exchanging", rate)
	}
}

func TestHeatedValidation(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 251)
	good := ChainConfig{Theta: 1, Burnin: 1, Samples: 2}
	if _, err := NewHeated(eval, device.Serial(), 0).Run(init, good); err == nil {
		t.Error("0 chains accepted")
	}
	for _, maxTemp := range []float64{0.5, -1, -8} {
		h := NewHeated(eval, device.Serial(), 2)
		h.MaxTemp = maxTemp
		if _, err := h.Run(init, good); err == nil {
			t.Errorf("MaxTemp %v accepted", maxTemp)
		}
	}
	h := NewHeated(eval, device.Serial(), 2)
	h.SwapEvery = -1
	if _, err := h.Run(init, good); err == nil {
		t.Error("negative SwapEvery accepted")
	}
	h = NewHeated(eval, device.Serial(), 2)
	h.SwapWindow = -5
	if _, err := h.Run(init, good); err == nil {
		t.Error("negative SwapWindow accepted")
	}
	if _, err := NewHeated(eval, device.Serial(), 2).Run(init, ChainConfig{Theta: 0, Samples: 1}); err == nil {
		t.Error("bad chain config accepted")
	}
}

func TestHeatedSingleChainNoSwaps(t *testing.T) {
	// Chains=1 reduces to plain MH: no swap attempts, no pair counters,
	// a single all-cold rung — with and without adaptation (there is
	// nothing to adapt).
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 261)
	cfg := ChainConfig{Theta: 1, Burnin: 10, Samples: 50, Seed: 262}
	for _, adapt := range []bool{false, true} {
		h := NewHeated(eval, device.Serial(), 1)
		h.Adapt = adapt
		res, err := h.Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.SwapAttempts != 0 {
			t.Errorf("adapt=%v: single-chain run attempted %d swaps", adapt, res.SwapAttempts)
		}
		if len(res.PairSwapAttempts) != 0 || len(res.EstPairSwapAttempts) != 0 {
			t.Errorf("adapt=%v: single-chain run has pair counters %v / %v",
				adapt, res.PairSwapAttempts, res.EstPairSwapAttempts)
		}
		if len(res.Betas) != 1 || res.Betas[0] != 1 {
			t.Errorf("adapt=%v: single-chain ladder betas %v, want [1]", adapt, res.Betas)
		}
	}
}

func TestHeatedMaxTemp1AllColdLadder(t *testing.T) {
	// MaxTemp=1 makes every rung target the untempered posterior: all
	// betas stay exactly 1 (even with adaptation on — a flat ladder has
	// no temperature span to redistribute) and every attempted swap
	// between identical targets is accepted.
	aln, _, err := seqgen.SimulateData(5, 60, 1.0, 271)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(subst.NewJC69(), aln, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 272)
	if err != nil {
		t.Fatal(err)
	}
	for _, adapt := range []bool{false, true} {
		h := NewHeated(eval, device.Serial(), 3)
		h.MaxTemp = 1
		h.Adapt = adapt
		res, err := h.Run(init, ChainConfig{Theta: 1, Burnin: 30, Samples: 120, Seed: 273})
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range res.Betas {
			if b != 1 {
				t.Errorf("adapt=%v: all-cold ladder rung %d has beta %v", adapt, i, b)
			}
		}
		if res.SwapAttempts == 0 {
			t.Fatalf("adapt=%v: no swap attempts", adapt)
		}
		if res.Swaps != res.SwapAttempts {
			t.Errorf("adapt=%v: %d of %d swaps accepted between identical targets, want all",
				adapt, res.Swaps, res.SwapAttempts)
		}
	}
}

func TestHeatedSwapCounterBookkeepingSwapEvery(t *testing.T) {
	// SwapEvery=3 over 20+40 steps: attempts land exactly at steps
	// 0, 3, 6, ..., and the per-pair breakdown (total and
	// estimation-phase) must sum to the aggregates.
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 281)
	burnin, samples, swapEvery := 20, 40, 3
	h := NewHeated(eval, device.Serial(), 3)
	h.SwapEvery = swapEvery
	res, err := h.Run(init, ChainConfig{Theta: 1, Burnin: burnin, Samples: samples, Seed: 282})
	if err != nil {
		t.Fatal(err)
	}
	total := burnin + samples
	wantAttempts, wantEst := 0, 0
	for step := 0; step < total; step++ {
		if step%swapEvery == 0 {
			wantAttempts++
			if step >= burnin {
				wantEst++
			}
		}
	}
	if res.SwapAttempts != wantAttempts {
		t.Errorf("SwapAttempts %d, want %d", res.SwapAttempts, wantAttempts)
	}
	sum := func(xs []int64) (s int64) {
		for _, x := range xs {
			s += x
		}
		return
	}
	if got := sum(res.PairSwapAttempts); got != int64(wantAttempts) {
		t.Errorf("per-pair attempts sum to %d, want %d", got, wantAttempts)
	}
	if got := sum(res.PairSwaps); got != int64(res.Swaps) {
		t.Errorf("per-pair swaps sum to %d, want %d", got, res.Swaps)
	}
	if got := sum(res.EstPairSwapAttempts); got != int64(wantEst) {
		t.Errorf("estimation-phase attempts sum to %d, want %d", got, wantEst)
	}
	for i := range res.PairSwapAttempts {
		if res.EstPairSwapAttempts[i] > res.PairSwapAttempts[i] {
			t.Errorf("pair %d: estimation-phase attempts %d exceed total %d",
				i, res.EstPairSwapAttempts[i], res.PairSwapAttempts[i])
		}
		if res.PairSwaps[i] > res.PairSwapAttempts[i] {
			t.Errorf("pair %d: %d swaps of %d attempts", i, res.PairSwaps[i], res.PairSwapAttempts[i])
		}
	}
}

// heatedFixedOracle replays the pre-refactor heated run loop — the fixed
// geometric ladder inlined into the stepper, exactly as it was before
// the tempering controller existed — as the equivalence oracle of the
// refactor: Heated with Adapt off must reproduce it bit for bit.
func heatedFixedOracle(eval *felsen.Evaluator, dev *device.Device, init *gtree.Tree, cfg ChainConfig, p int, maxTemp float64, swapEvery int) *Result {
	betas := make([]float64, p)
	for i := range betas {
		if p == 1 {
			betas[i] = 1
			break
		}
		betas[i] = math.Pow(maxTemp, -float64(i)/float64(p-1))
	}
	states := newChainLadder(eval, init, false, p)
	for i := range states {
		states[i].beta = betas[i]
	}
	host := seedSource(cfg.Seed, 5)
	streams := rng.NewStreamSet(p, cfg.Seed^0xc2b2ae3d27d4eb4f)
	accepted := make([]bool, p)
	rec, err := newRecorder(init.NTips(), cfg)
	if err != nil {
		panic(err)
	}
	res := &Result{Samples: rec.set}
	theta := cfg.Theta
	kernel := func(i int) {
		acc, _ := states[i].step(theta, streams.Stream(i))
		accepted[i] = acc
	}
	total := cfg.Burnin + cfg.Samples
	for step := 0; step < total; step++ {
		dev.Launch(p, kernel)
		res.Proposals += p
		if accepted[0] {
			res.Accepted++
		}
		if p > 1 && step%swapEvery == 0 {
			i := rng.Intn(host, p-1)
			j := i + 1
			logr := (betas[i] - betas[j]) * (states[j].logLik - states[i].logLik)
			if logr >= 0 || host.Float64() < math.Exp(logr) {
				states[i], states[j] = states[j], states[i]
				states[i].beta, states[j].beta = betas[i], betas[j]
				res.Swaps++
			}
			res.SwapAttempts++
		}
		if err := rec.recordState(states[0]); err != nil {
			panic(err)
		}
	}
	res.Final = states[0].cur.Clone()
	return res
}

func TestHeatedFixedLadderMatchesPreRefactorOracle(t *testing.T) {
	// The ladder-controller refactor must not change a single bit of a
	// non-adaptive run: same draws, same counters, same final genealogy
	// as the historical inline fixed-ladder loop.
	dev := device.New(3)
	defer dev.Close()
	eval, init := engineFixture(t, 6, 80, 291, dev)
	for _, tc := range []struct {
		p         int
		maxTemp   float64
		swapEvery int
	}{
		{3, 8, 1},
		{4, 20, 1},
		{3, 8, 5},
		{1, 8, 1},
	} {
		cfg := ChainConfig{Theta: 1.0, Burnin: 30, Samples: 150, Seed: 292}
		want := heatedFixedOracle(eval, dev, init, cfg, tc.p, tc.maxTemp, tc.swapEvery)
		h := NewHeated(eval, dev, tc.p)
		if tc.maxTemp != 8 {
			h.MaxTemp = tc.maxTemp
		}
		if tc.swapEvery != 1 {
			h.SwapEvery = tc.swapEvery
		}
		got, err := h.Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("p=%d maxTemp=%v swapEvery=%d", tc.p, tc.maxTemp, tc.swapEvery)
		sameTraces(t, label, want.Samples, got.Samples, 0)
		if got.Accepted != want.Accepted || got.Proposals != want.Proposals ||
			got.Swaps != want.Swaps || got.SwapAttempts != want.SwapAttempts {
			t.Errorf("%s: counters differ: got %+v want %+v", label,
				[4]int{got.Accepted, got.Proposals, got.Swaps, got.SwapAttempts},
				[4]int{want.Accepted, want.Proposals, want.Swaps, want.SwapAttempts})
		}
		if want.Final.String() != got.Final.String() {
			t.Errorf("%s: final genealogy differs", label)
		}
	}
}

func TestHeatedAdaptiveKillResumeBitIdentical(t *testing.T) {
	// The adapted ladder is runtime state: interrupting an adaptive run
	// at any step boundary — mid-adaptation, right at the freeze, after
	// it — and restoring into a fresh stepper must reproduce the
	// uninterrupted run bit for bit, including the per-pair swap
	// diagnostics and the adapted schedule itself.
	dev := device.New(3)
	defer dev.Close()
	eval, init := engineFixture(t, 6, 80, 295, dev)
	cfg := ChainConfig{Theta: 1.0, Burnin: 60, Samples: 120, Seed: 296}
	h := NewHeated(eval, dev, 4)
	h.Adapt = true
	h.MaxTemp = 32
	h.SwapWindow = 8 // small window so adaptation engages within burn-in

	want, err := h.Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, kill := range []int{0, 1, 35, 60, 130} {
		run, err := h.Start(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < kill && !run.Done(); i++ {
			if err := run.Step(); err != nil {
				t.Fatal(err)
			}
		}
		snap := mustSnapshot(t, run)
		resumed, err := h.Start(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.(SnapshotStepper).Restore(snap); err != nil {
			t.Fatal(err)
		}
		for !resumed.Done() {
			if err := resumed.Step(); err != nil {
				t.Fatal(err)
			}
		}
		got, err := resumed.Finish()
		if err != nil {
			t.Fatal(err)
		}
		resultsIdentical(t, fmt.Sprintf("adaptive kill=%d", kill), want, got)
	}

	// A snapshot without ladder state (format v1) must be rejected by an
	// adaptive run, and a non-adaptive run must refuse an adaptive
	// snapshot.
	run, err := h.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := mustSnapshot(t, run)
	v1 := *snap
	v1.Ladder = nil
	fresh, err := h.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.(SnapshotStepper).Restore(&v1); err == nil {
		t.Error("adaptive run restored a snapshot without ladder state")
	}
	plain := NewHeated(eval, dev, 4)
	plain.MaxTemp = 32
	plainRun, err := plain.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plainRun.(SnapshotStepper).Restore(snap); err == nil {
		t.Error("non-adaptive run restored an adaptive ladder snapshot")
	}
}

func TestHeatedV1ResumeOmitsPairHistory(t *testing.T) {
	// A non-adaptive run resumed from a format-v1 snapshot (no ladder
	// state) still reproduces the trace bit-for-bit, but the per-pair
	// swap breakdown was never recorded by that format: Finish must omit
	// it rather than report post-resume counts as the whole run's.
	dev := device.Serial()
	eval, init := engineFixture(t, 5, 50, 297, dev)
	cfg := ChainConfig{Theta: 1.0, Burnin: 20, Samples: 80, Seed: 298}
	h := NewHeated(eval, dev, 3)
	want, err := h.Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := h.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSnapshot(t, run)
	snap.Ladder = nil // what a v1 file decodes to
	resumed, err := h.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.(SnapshotStepper).Restore(snap); err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sameTraces(t, "v1 resume", want.Samples, got.Samples, 0)
	if got.Swaps != want.Swaps || got.SwapAttempts != want.SwapAttempts {
		t.Errorf("aggregate swap counters differ: %d/%d vs %d/%d",
			got.Swaps, got.SwapAttempts, want.Swaps, want.SwapAttempts)
	}
	if got.PairSwapAttempts != nil || got.PairSwaps != nil ||
		got.EstPairSwapAttempts != nil || got.EstPairSwaps != nil {
		t.Errorf("v1 resume reported a partial per-pair profile: %v", got.PairSwapAttempts)
	}
	if len(got.Betas) != 3 {
		t.Errorf("v1 resume lost the ladder betas: %v", got.Betas)
	}
}
