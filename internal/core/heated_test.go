package core

import (
	"math"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func TestHeatedFlatDataSamplesPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// With a flat likelihood every tempered posterior equals the prior,
	// so the cold chain must reproduce Kingman moments and every swap
	// must be accepted.
	theta := 1.4
	dev := device.New(4)
	eval := flatEvaluator(t, 5, dev)
	init := startTree(t, names(5), theta, 211)
	h := NewHeated(eval, dev, 4)
	res, err := h.Run(init, ChainConfig{Theta: theta, Burnin: 500, Samples: 30000, Seed: 212})
	if err != nil {
		t.Fatal(err)
	}
	checkPriorMoments(t, "Heated", res.Samples, theta)
	if res.SwapAttempts == 0 {
		t.Fatal("no swap attempts recorded")
	}
	if res.Swaps != res.SwapAttempts {
		t.Errorf("flat data: %d of %d swaps accepted, want all", res.Swaps, res.SwapAttempts)
	}
}

func TestHeatedSingleChainMatchesPosterior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// P=1 heated sampling is plain MH; with more chains the cold chain
	// must still target the same posterior. Compare posterior means.
	aln, _, err := seqgen.SimulateData(6, 100, 1.0, 221)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(4)
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 222)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChainConfig{Theta: 1.0, Burnin: 2000, Samples: 20000, Seed: 223}
	mh, err := NewMH(eval).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	heated, err := NewHeated(eval, dev, 4).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	a := mean(mh.Samples.PostBurninStats())
	b := mean(heated.Samples.PostBurninStats())
	if math.Abs(a-b) > 0.10*math.Max(a, b) {
		t.Errorf("posterior mean SumKKT: MH %v vs heated %v (>10%% apart)", a, b)
	}
}

func TestHeatedDeterministicAcrossWorkers(t *testing.T) {
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, 231)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 232)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChainConfig{Theta: 1.0, Burnin: 50, Samples: 300, Seed: 233}
	var ref []float64
	for _, workers := range []int{1, 4} {
		dev := device.New(workers)
		eval, err := felsen.New(subst.NewJC69(), aln, dev)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewHeated(eval, dev, 3).Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Samples.Stats
			continue
		}
		for i := range ref {
			if res.Samples.Stats[i] != ref[i] {
				t.Fatalf("workers=%d: draw %d differs", workers, i)
			}
		}
	}
}

func TestHeatedSwapsImproveColdChainMobility(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// On real data the heated ladder should accept a healthy fraction of
	// swaps (the ladder is doing work) without degrading the posterior.
	aln, _, err := seqgen.SimulateData(8, 200, 1.0, 241)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(4)
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 242)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeated(eval, dev, 4)
	res, err := h.Run(init, ChainConfig{Theta: 1.0, Burnin: 500, Samples: 5000, Seed: 243})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Swaps) / float64(res.SwapAttempts)
	if rate <= 0.05 {
		t.Errorf("swap acceptance %v suspiciously low: ladder not exchanging", rate)
	}
}

func TestHeatedValidation(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 251)
	good := ChainConfig{Theta: 1, Burnin: 1, Samples: 2}
	if _, err := NewHeated(eval, device.Serial(), 0).Run(init, good); err == nil {
		t.Error("0 chains accepted")
	}
	h := NewHeated(eval, device.Serial(), 2)
	h.MaxTemp = 0.5
	if _, err := h.Run(init, good); err == nil {
		t.Error("MaxTemp < 1 accepted")
	}
	if _, err := NewHeated(eval, device.Serial(), 2).Run(init, ChainConfig{Theta: 0, Samples: 1}); err == nil {
		t.Error("bad chain config accepted")
	}
}

func TestHeatedSingleChainNoSwaps(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 261)
	res, err := NewHeated(eval, device.Serial(), 1).Run(init, ChainConfig{Theta: 1, Burnin: 10, Samples: 50, Seed: 262})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapAttempts != 0 {
		t.Errorf("single-chain run attempted %d swaps", res.SwapAttempts)
	}
}
