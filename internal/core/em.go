package core

import (
	"fmt"
	"math"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
)

// EMConfig drives the outer Expectation-Maximization loop of the program
// (paper §5.1, Fig. 11): each iteration samples genealogies under the
// current driving θ, maximizes the relative likelihood to obtain a new θ,
// and repeats until the estimate stabilizes or the iteration budget is
// exhausted.
type EMConfig struct {
	InitialTheta float64
	Iterations   int
	Burnin       int
	Samples      int
	Seed         uint64
	// Tolerance stops the loop once |Δθ|/θ falls below it. Zero selects
	// 1e-3.
	Tolerance float64
	// MLE tunes the inner gradient ascent.
	MLE MLEConfig
	// Trace streams every pass's draws to the sidecar at Trace.Path
	// (all iterations append to the same file), keeping the recorder
	// memory-bounded and checkpoints O(interval).
	Trace *TraceSpec
	// ESSTarget/RHatTarget end each sampling pass early once the online
	// convergence diagnostics reach them; see ChainConfig.
	ESSTarget  float64
	RHatTarget float64
}

func (c *EMConfig) withDefaults() EMConfig {
	out := *c
	if out.Tolerance <= 0 {
		out.Tolerance = 1e-3
	}
	if out.Iterations <= 0 {
		out.Iterations = 10
	}
	return out
}

// EMIteration records one round of the loop.
type EMIteration struct {
	ThetaIn        float64
	ThetaOut       float64
	AcceptanceRate float64
	MeanLogLik     float64
}

// EMResult is the outcome of the full estimation.
type EMResult struct {
	Theta      float64
	History    []EMIteration
	LastSet    *SampleSet  // sample set of the final iteration
	LastRun    *Result     // full sampler result of the final iteration
	FinalState *gtree.Tree // final chain state
}

// RunEM performs the full maximum-likelihood estimation of θ: the overall
// program flow of paper Fig. 11. Each iteration reuses the previous
// iteration's final genealogy as its starting state, so later iterations
// begin near the posterior and the burn-in cost is paid usefully.
func RunEM(s Sampler, init *gtree.Tree, cfg EMConfig, dev *device.Device) (*EMResult, error) {
	e, err := StartEM(s, init, cfg, dev)
	if err != nil {
		return nil, err
	}
	for !e.Done() {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	return e.Result()
}

// EMRun is a step-driven EM estimation: the complete state of one job's
// estimation, advanced one sampler transition at a time. It is the unit
// the batch scheduler drives — many EMRuns interleave their steps over
// one shared device pool, and because each run owns all of its state
// (chain engine, PRNG streams, sample sets), a run's trajectory is
// bit-identical however its steps are interleaved with other runs'.
// RunEM is exactly StartEM driven to completion, so standalone and
// scheduled estimations share one code path.
type EMRun struct {
	sampler Sampler
	dev     *device.Device
	cfg     EMConfig // defaults applied
	cur     *gtree.Tree
	theta   float64
	it      int
	active  Stepper // nil between iterations
	res     *EMResult
	done    bool
	err     error
}

// StartEM validates the configuration and returns a step-driven
// estimation positioned before its first sampler transition.
func StartEM(s Sampler, init *gtree.Tree, cfg EMConfig, dev *device.Device) (*EMRun, error) {
	c := cfg.withDefaults()
	if c.InitialTheta <= 0 {
		return nil, fmt.Errorf("core: initial theta %v must be positive", c.InitialTheta)
	}
	return &EMRun{
		sampler: s,
		dev:     dev,
		cfg:     c,
		cur:     init,
		theta:   c.InitialTheta,
		res:     &EMResult{},
	}, nil
}

// Step advances the estimation by one sampler transition; when the
// transition completes an iteration's sampling pass, the same Step also
// maximizes θ and positions the run at the next iteration (or marks it
// done). A sampler that does not implement StepSampler runs its whole
// pass in a single coarse Step. Errors are fatal: the run is marked done
// and the error is also returned by Result.
func (e *EMRun) Step() error {
	if e.done {
		return e.err
	}
	if e.active == nil {
		ss, ok := e.sampler.(StepSampler)
		if !ok {
			// Coarse fallback: one whole sampling pass per Step.
			run, err := e.sampler.Run(e.cur, e.chainConfig())
			if err != nil {
				return e.fail(err)
			}
			return e.finishIteration(run)
		}
		run, err := ss.Start(e.cur, e.chainConfig())
		if err != nil {
			return e.fail(err)
		}
		e.active = run
	}
	if err := e.active.Step(); err != nil {
		return e.fail(err)
	}
	if e.active.Done() {
		run, err := e.active.Finish()
		e.active = nil
		if err != nil {
			return e.fail(err)
		}
		return e.finishIteration(run)
	}
	return nil
}

// Done reports whether the estimation has converged, exhausted its
// iteration budget, or failed.
func (e *EMRun) Done() bool { return e.done }

// Result returns the estimation outcome (or the error that ended it).
func (e *EMRun) Result() (*EMResult, error) {
	if e.err != nil {
		return nil, e.err
	}
	return e.res, nil
}

// Theta returns the current driving value, for progress reporting.
func (e *EMRun) Theta() float64 { return e.theta }

// chainConfig derives the current iteration's sampling configuration,
// decorrelating iterations exactly as RunEM always has.
func (e *EMRun) chainConfig() ChainConfig {
	return ChainConfig{
		Theta:      e.theta,
		Burnin:     e.cfg.Burnin,
		Samples:    e.cfg.Samples,
		Seed:       e.cfg.Seed + uint64(e.it)*0x9e3779b9,
		Trace:      e.cfg.Trace,
		ESSTarget:  e.cfg.ESSTarget,
		RHatTarget: e.cfg.RHatTarget,
	}
}

func (e *EMRun) fail(err error) error {
	e.err = fmt.Errorf("core: EM iteration %d: %w", e.it, err)
	e.done = true
	return e.err
}

// finishIteration runs the maximization phase over the completed sampling
// pass and advances (or completes) the estimation.
func (e *EMRun) finishIteration(run *Result) error {
	next, err := MaximizeTheta(run.Samples, e.cfg.MLE, e.dev)
	if err != nil {
		return e.fail(err)
	}
	lls := run.Samples.PostBurninLogLik()
	meanLL := 0.0
	for _, v := range lls {
		meanLL += v
	}
	if len(lls) > 0 {
		meanLL /= float64(len(lls))
	}
	e.res.History = append(e.res.History, EMIteration{
		ThetaIn:        e.theta,
		ThetaOut:       next,
		AcceptanceRate: run.AcceptanceRate(),
		MeanLogLik:     meanLL,
	})
	e.res.LastSet = run.Samples
	e.res.LastRun = run
	e.res.FinalState = run.Final
	e.cur = run.Final
	moved := math.Abs(next-e.theta) / e.theta
	e.theta = next
	e.it++
	if moved < e.cfg.Tolerance || e.it >= e.cfg.Iterations {
		e.res.Theta = e.theta
		e.done = true
	}
	return nil
}

// InitialTree builds the sampler's starting genealogy from the alignment:
// UPGMA over per-site pairwise differences (paper §5.1.3). When the
// sequences are too similar to give the tree any height (all distances
// zero), a random coalescent genealogy at the driving theta stands in, so
// the chain always starts from a valid state.
func InitialTree(aln *phylip.Alignment, theta0 float64, seed uint64) (*gtree.Tree, error) {
	if err := aln.Validate(); err != nil {
		return nil, err
	}
	d := aln.DistanceMatrix()
	L := float64(aln.SeqLen())
	for i := range d {
		for j := range d[i] {
			d[i][j] /= L
		}
	}
	t, err := UPGMATree(d, aln.Names)
	if err != nil {
		return nil, err
	}
	if t.Height() < 1e-9 {
		src := seedSource(seed, 3)
		return gtree.RandomCoalescent(aln.Names, theta0, src)
	}
	return t, nil
}

// UPGMATree wraps gtree.UPGMA; distances should be per-site divergences so
// node ages land in the same units as the likelihood model's branch
// lengths (expected substitutions per site).
func UPGMATree(dist [][]float64, names []string) (*gtree.Tree, error) {
	return gtree.UPGMA(dist, names)
}
