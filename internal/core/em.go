package core

import (
	"fmt"
	"math"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
)

// EMConfig drives the outer Expectation-Maximization loop of the program
// (paper §5.1, Fig. 11): each iteration samples genealogies under the
// current driving θ, maximizes the relative likelihood to obtain a new θ,
// and repeats until the estimate stabilizes or the iteration budget is
// exhausted.
type EMConfig struct {
	InitialTheta float64
	Iterations   int
	Burnin       int
	Samples      int
	Seed         uint64
	// Tolerance stops the loop once |Δθ|/θ falls below it. Zero selects
	// 1e-3.
	Tolerance float64
	// MLE tunes the inner gradient ascent.
	MLE MLEConfig
}

func (c *EMConfig) withDefaults() EMConfig {
	out := *c
	if out.Tolerance <= 0 {
		out.Tolerance = 1e-3
	}
	if out.Iterations <= 0 {
		out.Iterations = 10
	}
	return out
}

// EMIteration records one round of the loop.
type EMIteration struct {
	ThetaIn        float64
	ThetaOut       float64
	AcceptanceRate float64
	MeanLogLik     float64
}

// EMResult is the outcome of the full estimation.
type EMResult struct {
	Theta      float64
	History    []EMIteration
	LastSet    *SampleSet  // sample set of the final iteration
	FinalState *gtree.Tree // final chain state
}

// RunEM performs the full maximum-likelihood estimation of θ: the overall
// program flow of paper Fig. 11. Each iteration reuses the previous
// iteration's final genealogy as its starting state, so later iterations
// begin near the posterior and the burn-in cost is paid usefully.
func RunEM(s Sampler, init *gtree.Tree, cfg EMConfig, dev *device.Device) (*EMResult, error) {
	c := cfg.withDefaults()
	if c.InitialTheta <= 0 {
		return nil, fmt.Errorf("core: initial theta %v must be positive", c.InitialTheta)
	}
	theta := c.InitialTheta
	cur := init
	res := &EMResult{}
	for it := 0; it < c.Iterations; it++ {
		run, err := s.Run(cur, ChainConfig{
			Theta:   theta,
			Burnin:  c.Burnin,
			Samples: c.Samples,
			Seed:    c.Seed + uint64(it)*0x9e3779b9,
		})
		if err != nil {
			return nil, fmt.Errorf("core: EM iteration %d: %w", it, err)
		}
		next, err := MaximizeTheta(run.Samples, c.MLE, dev)
		if err != nil {
			return nil, fmt.Errorf("core: EM iteration %d: %w", it, err)
		}
		lls := run.Samples.PostBurninLogLik()
		meanLL := 0.0
		for _, v := range lls {
			meanLL += v
		}
		if len(lls) > 0 {
			meanLL /= float64(len(lls))
		}
		res.History = append(res.History, EMIteration{
			ThetaIn:        theta,
			ThetaOut:       next,
			AcceptanceRate: run.AcceptanceRate(),
			MeanLogLik:     meanLL,
		})
		res.LastSet = run.Samples
		res.FinalState = run.Final
		cur = run.Final
		moved := math.Abs(next-theta) / theta
		theta = next
		if moved < c.Tolerance {
			break
		}
	}
	res.Theta = theta
	return res, nil
}

// InitialTree builds the sampler's starting genealogy from the alignment:
// UPGMA over per-site pairwise differences (paper §5.1.3). When the
// sequences are too similar to give the tree any height (all distances
// zero), a random coalescent genealogy at the driving theta stands in, so
// the chain always starts from a valid state.
func InitialTree(aln *phylip.Alignment, theta0 float64, seed uint64) (*gtree.Tree, error) {
	if err := aln.Validate(); err != nil {
		return nil, err
	}
	d := aln.DistanceMatrix()
	L := float64(aln.SeqLen())
	for i := range d {
		for j := range d[i] {
			d[i][j] /= L
		}
	}
	t, err := UPGMATree(d, aln.Names)
	if err != nil {
		return nil, err
	}
	if t.Height() < 1e-9 {
		src := seedSource(seed, 3)
		return gtree.RandomCoalescent(aln.Names, theta0, src)
	}
	return t, nil
}

// UPGMATree wraps gtree.UPGMA; distances should be per-site divergences so
// node ages land in the same units as the likelihood model's branch
// lengths (expected substitutions per site).
func UPGMATree(dist [][]float64, names []string) (*gtree.Tree, error) {
	return gtree.UPGMA(dist, names)
}
