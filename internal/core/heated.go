package core

import (
	"fmt"
	"math"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// Heated is Metropolis-coupled MCMC (MC³), the heating strategy of the
// production LAMARC package (Kuhner 2006): P chains run the same
// neighbourhood-resimulation kernel against tempered posteriors
// P(D|G)^{β_i}·P(G|θ) with 1 = β_0 > β_1 > ... > β_{P-1}, and adjacent
// chains propose state swaps. Hot chains traverse likelihood valleys that
// trap the cold chain, and the swap moves ferry good states down the
// ladder. Only the cold chain's draws are recorded.
//
// Every rung is one chain-engine state on the persistent device pool: one
// PRNG stream, one resimulation scratch, and one conditional-likelihood
// cache per rung, so each within-chain step delta-evaluates only the
// resimulated neighbourhood — the long-chain workload where incremental
// evaluation compounds. Swaps exchange whole rung states (trees together
// with their caches), so no cache ever needs rebasing after a swap.
//
// MC³ parallelizes across the ladder, but like the independent-chains
// approach it cannot parallelize burn-in below one chain's length — the
// contrast motivating the paper's GMH sampler. It is provided both as a
// baseline and because it is the search strategy the reference package
// actually ships.
type Heated struct {
	eval *felsen.Evaluator
	dev  *device.Device
	// Chains is the ladder size P (>= 1; 1 reduces to plain MH).
	Chains int
	// MaxTemp is the hottest chain's temperature T_{P-1} (β = 1/T).
	// Zero selects 8. Intermediate temperatures are geometric.
	MaxTemp float64
	// SwapEvery is the number of within-chain steps between swap
	// attempts. Zero selects 1 (a swap attempt every step, LAMARC's
	// default behaviour).
	SwapEvery int
	// SerialEval makes every rung re-evaluate proposals from scratch, the
	// pre-engine behaviour kept as the equivalence-test oracle and for
	// benchmarking the delta path's per-step advantage.
	SerialEval bool
}

// NewHeated builds an MC³ sampler with the given ladder size.
func NewHeated(eval *felsen.Evaluator, dev *device.Device, chains int) *Heated {
	return &Heated{eval: eval, dev: dev, Chains: chains}
}

// Name implements Sampler.
func (h *Heated) Name() string { return "heated" }

// Run implements Sampler.
func (h *Heated) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	return runStepped(h, init, cfg)
}

// heatedRun is one started MC³ ladder: a Stepper whose Step is one
// parallel sweep of tempered within-chain moves plus a swap attempt.
type heatedRun struct {
	h         *Heated
	p         int
	swapEvery int
	total     int

	theta    float64
	betas    []float64
	states   []*chainState
	host     *rng.MT19937
	streams  *rng.StreamSet
	accepted []bool
	kernel   func(i int)

	rec  *recorder
	res  *Result
	step int
}

// Start implements StepSampler.
func (h *Heated) Start(init *gtree.Tree, cfg ChainConfig) (Stepper, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := h.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	p := h.Chains
	if p < 1 {
		return nil, fmt.Errorf("core: heated sampler needs at least 1 chain, got %d", p)
	}
	maxTemp := h.MaxTemp
	if maxTemp <= 0 {
		maxTemp = 8
	}
	if maxTemp < 1 {
		return nil, fmt.Errorf("core: MaxTemp %v must be at least 1", maxTemp)
	}
	swapEvery := h.SwapEvery
	if swapEvery <= 0 {
		swapEvery = 1
	}

	// Geometric temperature ladder: T_i = MaxTemp^{i/(P-1)}.
	betas := make([]float64, p)
	for i := range betas {
		if p == 1 {
			betas[i] = 1
			break
		}
		betas[i] = math.Pow(maxTemp, -float64(i)/float64(p-1))
	}

	r := &heatedRun{
		h:         h,
		p:         p,
		swapEvery: swapEvery,
		total:     cfg.Burnin + cfg.Samples,
		theta:     cfg.Theta,
		betas:     betas,
		host:      seedSource(cfg.Seed, 5),
		streams:   rng.NewStreamSet(p, cfg.Seed^0xc2b2ae3d27d4eb4f),
		accepted:  make([]bool, p),
		rec:       newRecorder(init.NTips(), cfg),
	}

	// One engine state per rung: tree pair, delta cache, resimulation
	// scratch and tempering exponent, driven by the rung's own stream.
	// The shared starting tree is evaluated once and replicated.
	r.states = newChainLadder(h.eval, init, h.SerialEval, p)
	for i := range r.states {
		r.states[i].beta = betas[i]
	}
	r.res = &Result{Samples: r.rec.set}

	// One tempered MH step per rung, in parallel across the ladder on the
	// persistent pool. Each rung owns its stream, state and scratch, so
	// results are deterministic regardless of scheduling; the closure is
	// built once and reused by every launch. A rung whose resimulation
	// lands in an infeasible region simply skips the move.
	r.kernel = func(i int) {
		acc, _ := r.states[i].step(r.theta, r.streams.Stream(i))
		r.accepted[i] = acc
	}
	return r, nil
}

// Step implements Stepper: one ladder sweep plus a swap attempt.
func (r *heatedRun) Step() error {
	r.h.dev.Launch(r.p, r.kernel)
	r.res.Proposals += r.p
	if r.accepted[0] {
		r.res.Accepted++
	}

	// Swap attempt between a random adjacent pair (serial, cheap).
	// Accepted swaps exchange the whole rung states and re-pin the
	// tempering exponents to the ladder positions: the trees move,
	// the temperatures stay.
	if r.p > 1 && r.step%r.swapEvery == 0 {
		i := rng.Intn(r.host, r.p-1)
		j := i + 1
		logr := (r.betas[i] - r.betas[j]) * (r.states[j].logLik - r.states[i].logLik)
		if logr >= 0 || r.host.Float64() < math.Exp(logr) {
			r.states[i], r.states[j] = r.states[j], r.states[i]
			r.states[i].beta, r.states[j].beta = r.betas[i], r.betas[j]
			r.res.Swaps++
		}
		r.res.SwapAttempts++
	}

	r.rec.recordState(r.states[0])
	r.step++
	return nil
}

// Done implements Stepper.
func (r *heatedRun) Done() bool { return r.step >= r.total }

// Finish implements Stepper.
func (r *heatedRun) Finish() (*Result, error) {
	r.res.Final = r.states[0].cur.Clone()
	return r.res, nil
}

// Snapshot implements SnapshotStepper: every rung's chain state in ladder
// order, plus the swap generator and all rung streams.
func (r *heatedRun) Snapshot() *StepSnapshot {
	chains := make([]ChainSnapshot, r.p)
	for i, st := range r.states {
		chains[i] = st.Snapshot()
	}
	return &StepSnapshot{
		Sampler:  "heated",
		Step:     r.step,
		Host:     r.host.State(),
		Streams:  r.streams.State(),
		Chains:   chains,
		Trace:    r.rec.snapshot(),
		Counters: countersOf(r.res),
	}
}

// Restore implements SnapshotStepper.
func (r *heatedRun) Restore(s *StepSnapshot) error {
	if s.Sampler != "heated" {
		return fmt.Errorf("core: %q snapshot restored into a heated run", s.Sampler)
	}
	if len(s.Chains) != r.p {
		return fmt.Errorf("core: heated snapshot has %d rungs, run is configured for %d", len(s.Chains), r.p)
	}
	if s.Step < 0 || s.Step > r.total {
		return fmt.Errorf("core: heated snapshot at step %d, run has %d", s.Step, r.total)
	}
	if s.Trace == nil || len(s.Trace.Stats) != s.Step {
		return fmt.Errorf("core: heated snapshot trace does not match step %d", s.Step)
	}
	for i := range s.Chains {
		// Swaps re-pin β to the ladder position, so a rung's snapshot β
		// must equal the run's recomputed ladder exactly; a mismatch means
		// Chains or MaxTemp changed since the snapshot.
		if s.Chains[i].Beta != r.betas[i] {
			return fmt.Errorf("core: heated snapshot rung %d has beta %v, ladder has %v (MaxTemp/Chains changed?)",
				i, s.Chains[i].Beta, r.betas[i])
		}
	}
	if err := r.host.SetState(s.Host); err != nil {
		return err
	}
	if err := r.streams.SetState(s.Streams); err != nil {
		return err
	}
	for i := range s.Chains {
		if err := r.states[i].RestoreChainState(s.Chains[i]); err != nil {
			return fmt.Errorf("core: heated rung %d: %w", i, err)
		}
	}
	if err := r.rec.restore(s.Trace); err != nil {
		return err
	}
	s.Counters.applyTo(r.res)
	r.step = s.Step
	return nil
}
