package core

import (
	"fmt"
	"math"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
)

// Heated is Metropolis-coupled MCMC (MC³), the heating strategy of the
// production LAMARC package (Kuhner 2006): P chains run the same
// neighbourhood-resimulation kernel against tempered posteriors
// P(D|G)^{β_i}·P(G|θ) with 1 = β_0 > β_1 > ... > β_{P-1}, and adjacent
// chains propose state swaps. Hot chains traverse likelihood valleys that
// trap the cold chain, and the swap moves ferry good states down the
// ladder. Only the cold chain's draws are recorded.
//
// MC³ parallelizes across the ladder, but like the independent-chains
// approach it cannot parallelize burn-in below one chain's length — the
// contrast motivating the paper's GMH sampler. It is provided both as a
// baseline and because it is the search strategy the reference package
// actually ships.
type Heated struct {
	eval *felsen.Evaluator
	dev  *device.Device
	// Chains is the ladder size P (>= 1; 1 reduces to plain MH).
	Chains int
	// MaxTemp is the hottest chain's temperature T_{P-1} (β = 1/T).
	// Zero selects 8. Intermediate temperatures are geometric.
	MaxTemp float64
	// SwapEvery is the number of within-chain steps between swap
	// attempts. Zero selects 1 (a swap attempt every step, LAMARC's
	// default behaviour).
	SwapEvery int
}

// NewHeated builds an MC³ sampler with the given ladder size.
func NewHeated(eval *felsen.Evaluator, dev *device.Device, chains int) *Heated {
	return &Heated{eval: eval, dev: dev, Chains: chains}
}

// Name implements Sampler.
func (h *Heated) Name() string { return "heated" }

// Run implements Sampler.
func (h *Heated) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := h.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	p := h.Chains
	if p < 1 {
		return nil, fmt.Errorf("core: heated sampler needs at least 1 chain, got %d", p)
	}
	maxTemp := h.MaxTemp
	if maxTemp <= 0 {
		maxTemp = 8
	}
	if maxTemp < 1 {
		return nil, fmt.Errorf("core: MaxTemp %v must be at least 1", maxTemp)
	}
	swapEvery := h.SwapEvery
	if swapEvery <= 0 {
		swapEvery = 1
	}

	// Geometric temperature ladder: T_i = MaxTemp^{i/(P-1)}.
	betas := make([]float64, p)
	for i := range betas {
		if p == 1 {
			betas[i] = 1
			break
		}
		betas[i] = math.Pow(maxTemp, -float64(i)/float64(p-1))
	}

	host := seedSource(cfg.Seed, 5)
	streams := rng.NewStreamSet(p, cfg.Seed^0xc2b2ae3d27d4eb4f)

	cur := make([]*gtree.Tree, p)
	prop := make([]*gtree.Tree, p)
	logL := make([]float64, p)
	for i := range cur {
		cur[i] = init.Clone()
		prop[i] = init.Clone()
	}
	logL0 := h.eval.LogLikelihoodSerial(init)
	for i := range logL {
		logL[i] = logL0
	}

	total := cfg.Burnin + cfg.Samples
	out := &SampleSet{
		NTips:  init.NTips(),
		Theta0: cfg.Theta,
		Burnin: cfg.Burnin,
		Stats:  make([]float64, 0, total),
		Ages:   make([][]float64, 0, total),
		LogLik: make([]float64, 0, total),
	}
	res := &Result{Samples: out}
	accepted := make([]bool, p)

	for step := 0; step < total; step++ {
		// One tempered MH step per chain, in parallel across the ladder.
		// Each chain owns its PRNG stream, so results are deterministic
		// regardless of scheduling.
		h.dev.Launch(p, func(i int) {
			src := streams.Stream(i)
			target := resim.PickTarget(cur[i], src)
			prop[i].CopyFrom(cur[i])
			if err := resim.Resimulate(prop[i], target, cfg.Theta, src); err != nil {
				accepted[i] = false
				return
			}
			pl := h.eval.LogLikelihoodSerial(prop[i])
			logr := betas[i] * (pl - logL[i])
			if logr >= 0 || src.Float64() < math.Exp(logr) {
				cur[i], prop[i] = prop[i], cur[i]
				logL[i] = pl
				accepted[i] = true
			} else {
				accepted[i] = false
			}
		})
		res.Proposals += p
		if accepted[0] {
			res.Accepted++
		}

		// Swap attempt between a random adjacent pair (serial, cheap).
		if p > 1 && step%swapEvery == 0 {
			i := rng.Intn(host, p-1)
			j := i + 1
			logr := (betas[i] - betas[j]) * (logL[j] - logL[i])
			if logr >= 0 || host.Float64() < math.Exp(logr) {
				cur[i], cur[j] = cur[j], cur[i]
				logL[i], logL[j] = logL[j], logL[i]
				res.Swaps++
			}
			res.SwapAttempts++
		}

		ages := cur[0].CoalescentAges()
		out.Stats = append(out.Stats, sumKKTFromAges(out.NTips, ages))
		out.Ages = append(out.Ages, ages)
		out.LogLik = append(out.LogLik, logL[0])
	}
	res.Final = cur[0].Clone()
	return res, nil
}
