package core

import (
	"fmt"
	"math"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
	"mpcgs/internal/tempering"
)

// Heated is Metropolis-coupled MCMC (MC³), the heating strategy of the
// production LAMARC package (Kuhner 2006): P chains run the same
// neighbourhood-resimulation kernel against tempered posteriors
// P(D|G)^{β_i}·P(G|θ) with 1 = β_0 > β_1 > ... > β_{P-1}, and adjacent
// chains propose state swaps. Hot chains traverse likelihood valleys that
// trap the cold chain, and the swap moves ferry good states down the
// ladder. Only the cold chain's draws are recorded.
//
// Every rung is one chain-engine state on the persistent device pool: one
// PRNG stream, one resimulation scratch, and one conditional-likelihood
// cache per rung, so each within-chain step delta-evaluates only the
// resimulated neighbourhood — the long-chain workload where incremental
// evaluation compounds. Swaps exchange whole rung states (trees together
// with their caches), so no cache ever needs rebasing after a swap.
//
// The β schedule is owned by a tempering.Ladder controller. By default it
// is the fixed geometric ladder; with Adapt set, the controller retunes
// the interior temperatures from the observed per-pair swap rates during
// burn-in (LAMARC's runtime heating adaptation, Vousden-style stochastic
// approximation) and freezes the ladder when burn-in ends, so every
// recorded estimation draw targets a fixed, correct distribution.
//
// MC³ parallelizes across the ladder, but like the independent-chains
// approach it cannot parallelize burn-in below one chain's length — the
// contrast motivating the paper's GMH sampler. It is provided both as a
// baseline and because it is the search strategy the reference package
// actually ships.
type Heated struct {
	eval *felsen.Evaluator
	dev  *device.Device
	// Chains is the ladder size P (>= 1; 1 reduces to plain MH).
	Chains int
	// MaxTemp is the hottest chain's temperature T_{P-1} (β = 1/T).
	// Zero selects 8; values below 1 (including negative ones) are
	// rejected at Start. Intermediate temperatures start geometric.
	MaxTemp float64
	// SwapEvery is the number of within-chain steps between swap
	// attempts. Zero selects 1 (a swap attempt every step, LAMARC's
	// default behaviour); negative values are rejected at Start.
	SwapEvery int
	// Adapt turns on swap-rate-driven temperature-ladder adaptation
	// during burn-in. Off, the ladder is the fixed geometric reference
	// schedule (bit-identical to the historical behaviour).
	Adapt bool
	// SwapWindow is the sliding-window size (per adjacent pair) the
	// controller estimates swap rates over. Zero selects
	// tempering.DefaultWindow; negative values are rejected at Start.
	SwapWindow int
	// SerialEval makes every rung re-evaluate proposals from scratch, the
	// pre-engine behaviour kept as the equivalence-test oracle and for
	// benchmarking the delta path's per-step advantage.
	SerialEval bool
}

// NewHeated builds an MC³ sampler with the given ladder size.
func NewHeated(eval *felsen.Evaluator, dev *device.Device, chains int) *Heated {
	return &Heated{eval: eval, dev: dev, Chains: chains}
}

// Name implements Sampler.
func (h *Heated) Name() string { return "heated" }

// Run implements Sampler.
func (h *Heated) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	return runStepped(h, init, cfg)
}

// heatedRun is one started MC³ ladder: a Stepper whose Step is one
// parallel sweep of tempered within-chain moves plus a swap attempt.
type heatedRun struct {
	h         *Heated
	p         int
	swapEvery int
	burnin    int
	total     int

	theta    float64
	ladder   *tempering.Ladder
	states   []*chainState
	host     *rng.MT19937
	streams  *rng.StreamSet
	accepted []bool
	kernel   func(i int)

	rec  *recorder
	res  *Result
	step int
	// noPairHistory marks a run restored from a snapshot without ladder
	// state (checkpoint format v1): the aggregate Swaps/SwapAttempts
	// counters were restored but the per-pair breakdown was not recorded
	// by the old format, so Finish omits the per-pair profile instead of
	// reporting post-resume counts as if they covered the whole run.
	noPairHistory bool
}

// Start implements StepSampler.
func (h *Heated) Start(init *gtree.Tree, cfg ChainConfig) (Stepper, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := h.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	p := h.Chains
	if p < 1 {
		return nil, fmt.Errorf("core: heated sampler needs at least 1 chain, got %d", p)
	}
	maxTemp := h.MaxTemp
	if maxTemp == 0 {
		maxTemp = 8
	}
	if maxTemp < 1 {
		return nil, fmt.Errorf("core: MaxTemp %v must be at least 1", maxTemp)
	}
	if h.SwapEvery < 0 {
		return nil, fmt.Errorf("core: SwapEvery %d must not be negative", h.SwapEvery)
	}
	swapEvery := h.SwapEvery
	if swapEvery == 0 {
		swapEvery = 1
	}
	if h.SwapWindow < 0 {
		return nil, fmt.Errorf("core: SwapWindow %d must not be negative", h.SwapWindow)
	}

	// The β schedule lives in the ladder controller: geometric
	// T_i = MaxTemp^{i/(P-1)} initially, retuned at swap attempts during
	// burn-in when Adapt is on.
	ladder, err := tempering.New(tempering.Config{
		Chains:  p,
		MaxTemp: maxTemp,
		Adapt:   h.Adapt,
		Window:  h.SwapWindow,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	rec, err := newRecorder(init.NTips(), cfg)
	if err != nil {
		return nil, err
	}
	r := &heatedRun{
		h:         h,
		p:         p,
		swapEvery: swapEvery,
		burnin:    cfg.Burnin,
		total:     cfg.Burnin + cfg.Samples,
		theta:     cfg.Theta,
		ladder:    ladder,
		host:      seedSource(cfg.Seed, 5),
		streams:   rng.NewStreamSet(p, cfg.Seed^0xc2b2ae3d27d4eb4f),
		accepted:  make([]bool, p),
		rec:       rec,
	}

	// One engine state per rung: tree pair, delta cache, resimulation
	// scratch and tempering exponent, driven by the rung's own stream.
	// The shared starting tree is evaluated once and replicated.
	r.states = newChainLadder(h.eval, init, h.SerialEval, p)
	for i := range r.states {
		r.states[i].beta = ladder.Beta(i)
	}
	r.res = &Result{Samples: r.rec.set}

	// One tempered MH step per rung, in parallel across the ladder on the
	// persistent pool. Each rung owns its stream, state and scratch, so
	// results are deterministic regardless of scheduling; the closure is
	// built once and reused by every launch. A rung whose resimulation
	// lands in an infeasible region simply skips the move.
	r.kernel = func(i int) {
		acc, _ := r.states[i].step(r.theta, r.streams.Stream(i))
		r.accepted[i] = acc
	}
	return r, nil
}

// Step implements Stepper: one ladder sweep plus a swap attempt.
func (r *heatedRun) Step() error {
	r.h.dev.Launch(r.p, r.kernel)
	r.res.Proposals += r.p
	if r.accepted[0] {
		r.res.Accepted++
	}

	// Swap attempt between a random adjacent pair (serial, cheap).
	// Accepted swaps exchange the whole rung states: the trees move,
	// the temperatures stay with their ladder positions. The controller
	// records the outcome and — during burn-in, with adaptation on —
	// retunes the ladder, after which every rung's β is re-pinned to the
	// (possibly moved) schedule.
	if r.p > 1 && r.step%r.swapEvery == 0 {
		i := rng.Intn(r.host, r.p-1)
		j := i + 1
		bi, bj := r.ladder.Beta(i), r.ladder.Beta(j)
		logr := (bi - bj) * (r.states[j].logLik - r.states[i].logLik)
		swapped := logr >= 0 || r.host.Float64() < math.Exp(logr)
		if swapped {
			r.states[i], r.states[j] = r.states[j], r.states[i]
			r.res.Swaps++
		}
		r.res.SwapAttempts++
		r.ladder.Record(i, swapped, r.step < r.burnin)
		for k := range r.states {
			r.states[k].beta = r.ladder.Beta(k)
		}
	}

	if err := r.rec.recordState(r.states[0]); err != nil {
		return err
	}
	r.step++
	return nil
}

// Done implements Stepper.
func (r *heatedRun) Done() bool { return r.rec.full() }

// Finish implements Stepper.
func (r *heatedRun) Finish() (*Result, error) {
	if err := r.rec.finalize(); err != nil {
		return nil, err
	}
	r.rec.applyOutcome(r.res)
	r.res.Final = r.states[0].cur.Clone()
	r.res.Betas = r.ladder.Betas()
	r.res.LadderAdapted = r.ladder.Adaptive()
	r.res.LadderAdaptations = r.ladder.Adaptations()
	if !r.noPairHistory {
		r.res.PairSwapAttempts = r.ladder.PairAttempts()
		r.res.PairSwaps = r.ladder.PairAccepts()
		r.res.EstPairSwapAttempts = r.ladder.EstPairAttempts()
		r.res.EstPairSwaps = r.ladder.EstPairAccepts()
	}
	return r.res, nil
}

// Snapshot implements SnapshotStepper: every rung's chain state in ladder
// order, plus the swap generator, all rung streams, and the ladder
// controller's runtime state (the adapted schedule, per-pair windows and
// adaptation clock) — checkpoint format v2 carries the latter.
func (r *heatedRun) Snapshot() (*StepSnapshot, error) {
	chains := make([]ChainSnapshot, r.p)
	for i, st := range r.states {
		chains[i] = st.Snapshot()
	}
	t, ref, err := r.rec.snapshot()
	if err != nil {
		return nil, err
	}
	return &StepSnapshot{
		Sampler:  "heated",
		Step:     r.step,
		Host:     r.host.State(),
		Streams:  r.streams.State(),
		Chains:   chains,
		Ladder:   r.ladder.Snapshot(),
		Trace:    t,
		TraceRef: ref,
		Counters: countersOf(r.res),
	}, nil
}

// Restore implements SnapshotStepper.
func (r *heatedRun) Restore(s *StepSnapshot) error {
	if s.Sampler != "heated" {
		return fmt.Errorf("core: %q snapshot restored into a heated run", s.Sampler)
	}
	if len(s.Chains) != r.p {
		return fmt.Errorf("core: heated snapshot has %d rungs, run is configured for %d", len(s.Chains), r.p)
	}
	if s.Step < 0 || s.Step > r.total {
		return fmt.Errorf("core: heated snapshot at step %d, run has %d", s.Step, r.total)
	}
	if s.Ladder != nil {
		if err := r.ladder.Restore(s.Ladder); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	} else if r.h.Adapt {
		// A format-v1 snapshot carries no ladder state; the adapted
		// schedule is runtime state, so an adaptive run cannot resume
		// from it. Non-adaptive runs can: their ladder is recomputed
		// exactly, and the β check below cross-validates it — but the
		// per-pair swap history is gone, so Finish will omit it.
		return fmt.Errorf("core: heated snapshot has no ladder state (format v1?); an adaptive run needs a v2 snapshot")
	} else {
		r.noPairHistory = true
	}
	for i := range s.Chains {
		// Swaps keep β pinned to the ladder position, so a rung's
		// snapshot β must equal the restored controller's schedule
		// exactly; a mismatch means Chains or MaxTemp changed since the
		// snapshot.
		if s.Chains[i].Beta != r.ladder.Beta(i) {
			return fmt.Errorf("core: heated snapshot rung %d has beta %v, ladder has %v (MaxTemp/Chains changed?)",
				i, s.Chains[i].Beta, r.ladder.Beta(i))
		}
	}
	if err := r.host.SetState(s.Host); err != nil {
		return err
	}
	if err := r.streams.SetState(s.Streams); err != nil {
		return err
	}
	for i := range s.Chains {
		if err := r.states[i].RestoreChainState(s.Chains[i]); err != nil {
			return fmt.Errorf("core: heated rung %d: %w", i, err)
		}
	}
	if err := r.rec.restore(s.Trace, s.TraceRef, s.Step); err != nil {
		return err
	}
	s.Counters.applyTo(r.res)
	r.step = s.Step
	return nil
}
