package core

import (
	"fmt"
	"math"

	"mpcgs/internal/coalprior"
	"mpcgs/internal/device"
)

// RelLogLikelihood returns log L(θ), the log of the relative likelihood of
// paper Eq. 26: the mean over sampled genealogies of P(G|θ)/P(G|θ0).
// It is the posterior likelihood kernel of §5.2.3: one device thread per
// sample computes the per-genealogy log-ratio from its reduced interval
// representation, a max-reduction provides the §5.3 normalizing factor,
// and an additive reduction completes the mean.
func RelLogLikelihood(s *SampleSet, theta float64, dev *device.Device) float64 {
	if dev == nil {
		dev = device.Serial()
	}
	stats := s.PostBurninStats()
	if len(stats) == 0 {
		panic("core: RelLogLikelihood with no post-burn-in samples")
	}
	terms := make([]float64, len(stats))
	dev.Launch(len(stats), func(i int) {
		terms[i] = coalprior.LogPriorRatio(s.NTips, stats[i], theta, s.Theta0)
	})
	return dev.ReduceLogSum(terms) - math.Log(float64(len(terms)))
}

// Curve evaluates log L(θ) over a grid of theta values, for likelihood
// curve reports (paper Fig. 5).
func Curve(s *SampleSet, thetas []float64, dev *device.Device) []float64 {
	out := make([]float64, len(thetas))
	for i, th := range thetas {
		out[i] = RelLogLikelihood(s, th, dev)
	}
	return out
}

// MLEConfig tunes the gradient ascent of Algorithm 2.
type MLEConfig struct {
	// Delta is the finite-difference half-width, relative to the current
	// theta. Zero selects 1e-6.
	Delta float64
	// Epsilon is the convergence threshold on theta movement, relative to
	// the current theta. Zero selects 1e-8.
	Epsilon float64
	// MaxIterations bounds the ascent. Zero selects 200.
	MaxIterations int
}

func (c *MLEConfig) withDefaults() MLEConfig {
	out := *c
	if out.Delta <= 0 {
		out.Delta = 1e-6
	}
	if out.Epsilon <= 0 {
		out.Epsilon = 1e-8
	}
	if out.MaxIterations <= 0 {
		out.MaxIterations = 200
	}
	return out
}

// MaximizeTheta finds the θ maximizing the relative likelihood over the
// sample set by the iterative gradient ascent of Algorithm 2: a central
// finite-difference gradient proposes a step, the step is halved while it
// would reduce the objective or drive θ non-positive, and the ascent stops
// when θ moves less than epsilon. The ascent runs on log L(θ), a monotone
// transform of the paper's L(θ) with the same maximizer but a far wider
// dynamic range (§5.3).
func MaximizeTheta(s *SampleSet, cfg MLEConfig, dev *device.Device) (float64, error) {
	c := cfg.withDefaults()
	theta := s.Theta0
	if theta <= 0 {
		return 0, fmt.Errorf("core: sample set has non-positive driving theta %v", theta)
	}
	obj := func(t float64) float64 { return RelLogLikelihood(s, t, dev) }

	for iter := 0; iter < c.MaxIterations; iter++ {
		delta := c.Delta * theta
		grad := (obj(theta+delta) - obj(theta-delta)) / (2 * delta)
		step := grad
		// Trust region: cap the step at the current theta so one
		// iteration at most doubles the estimate. Without the cap, a
		// driving value far below the maximizer (the Fig. 5 setting,
		// theta0 = 0.01) has an enormous gradient that overshoots onto
		// the flat far slope of the curve, where the raw Algorithm 2
		// crawls; the cap turns the approach into a geometric climb.
		if math.Abs(step) > theta {
			step = math.Copysign(theta, step)
		}
		// Halve the step until it is admissible: positive destination
		// and non-decreasing objective (Algorithm 2's inner loop).
		cur := obj(theta)
		halvings := 0
		for ; halvings < 200; halvings++ {
			next := theta + step
			if next > 0 && obj(next) >= cur {
				break
			}
			step /= 2
		}
		if halvings == 200 {
			return theta, nil // gradient direction yields no improvement
		}
		theta += step
		// Converged once the raw gradient itself would move theta by
		// less than epsilon relative — a clamped or halved step still
		// counts as progress.
		if math.Abs(grad) <= c.Epsilon*theta {
			return theta, nil
		}
	}
	return theta, nil
}
