package core

import (
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// BenchmarkGMHRound times full GMH sampling runs (8 proposals, 8 draws
// per round) on the paper's Table 1 workload. allocs/op is the headline:
// the GMH round loop, the delta likelihood path and — since the per-stream
// resim.Scratch — the resimulation kernel's region analysis all allocate
// nothing, so what remains is per-Run setup (slot trees, caches, streams,
// scratches), a fixed cost amortized over the chain length. The harness is
// kept exactly as it has always been (whole Run, setup included) so
// benchstat deltas across commits compare like with like.
func BenchmarkGMHRound(b *testing.B) {
	aln, _, err := seqgen.SimulateData(12, 200, 1.0, 20160401)
	if err != nil {
		b.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	dev := device.New(8)
	defer dev.Close()
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		b.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 7)
	if err != nil {
		b.Fatal(err)
	}
	g := NewGMH(eval, dev, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(init, ChainConfig{Theta: 1.0, Burnin: 0, Samples: 64, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// The sequence-length points of the wave acceptance criterion: one GMH
// round (8 proposals resimulated, evaluated, 8 index draws) at 1000bp and
// 4000bp, the fused (proposal × pattern-block) wave against the
// per-candidate dispatch it replaced on an identical workload. 32 taxa,
// where the shared root path above the resimulated neighbourhood is deep
// enough that the per-round outer-partial lift has something to lift;
// 12-taxon trees spend most rounds with the target's parent a step or two
// from the root, leaving little shared path to fuse.
func BenchmarkGMHRound1000bp(b *testing.B)             { benchGMHRoundStep(b, 32, 1000, false) }
func BenchmarkGMHRound1000bpPerCandidate(b *testing.B) { benchGMHRoundStep(b, 32, 1000, true) }
func BenchmarkGMHRound4000bp(b *testing.B)             { benchGMHRoundStep(b, 32, 4000, false) }
func BenchmarkGMHRound4000bpPerCandidate(b *testing.B) { benchGMHRoundStep(b, 32, 4000, true) }

func benchGMHRoundStep(b *testing.B, nSeq, seqLen int, perCandidate bool) {
	b.Helper()
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, 20160401)
	if err != nil {
		b.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	dev := device.New(8)
	defer dev.Close()
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		b.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 7)
	if err != nil {
		b.Fatal(err)
	}
	g := NewGMH(eval, dev, 8)
	g.PerCandidate = perCandidate
	// One long-lived run, rounds timed one Step at a time: the chain
	// setup (full-tree rebase, slot arenas, streams) is a fixed per-Run
	// cost and would otherwise dilute the round measurement.
	cfg := ChainConfig{Theta: 1.0, Burnin: 0, Samples: 4096, Seed: 7}
	run, err := g.Start(init, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if run.Done() {
			b.StopTimer()
			if run, err = g.Start(init, cfg); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := run.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
