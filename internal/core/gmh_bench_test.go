package core

import (
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// BenchmarkGMHRound times full GMH sampling rounds (8 proposals, 8 draws
// per round) on the paper's Table 1 workload. allocs/op is the headline:
// the GMH round loop, the delta likelihood path and — since the per-stream
// resim.Scratch — the resimulation kernel's region analysis all allocate
// nothing, so what remains is per-Run setup (slot trees, caches, streams,
// scratches), a fixed cost amortized over the chain length.
func BenchmarkGMHRound(b *testing.B) {
	aln, _, err := seqgen.SimulateData(12, 200, 1.0, 20160401)
	if err != nil {
		b.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	dev := device.New(8)
	defer dev.Close()
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		b.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 7)
	if err != nil {
		b.Fatal(err)
	}
	g := NewGMH(eval, dev, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(init, ChainConfig{Theta: 1.0, Burnin: 0, Samples: 64, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}
