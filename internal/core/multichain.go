package core

import (
	"fmt"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
)

// MultiChain is the classic parallelization the paper argues against
// (§3, Fig. 6): P independent Metropolis-Hastings chains run concurrently,
// each paying its own full burn-in, with the post-burn-in samples pooled.
// Total work is P·B + S for S pooled samples, so by Amdahl's law the
// speedup over a single chain saturates at (B+S)/B no matter how many
// processors are added — the motivation for the GMH sampler. Each chain
// is a delta-evaluated engine chain (with its own likelihood cache and
// resimulation scratch) unless SerialEval restores the reference mode;
// cheaper steps do not change the Amdahl argument, which is about burn-in
// replication, not per-step cost.
type MultiChain struct {
	eval   *felsen.Evaluator
	dev    *device.Device
	Chains int
	// SerialEval runs every chain in the LAMARC reference mode (full
	// per-step likelihood recomputation) instead of the chain engine's
	// delta evaluation — the historical measurement the Fig. 6 timings
	// are defined against.
	SerialEval bool
}

// NewMultiChain builds the P-independent-chains baseline on dev.
func NewMultiChain(eval *felsen.Evaluator, dev *device.Device, chains int) *MultiChain {
	return &MultiChain{eval: eval, dev: dev, Chains: chains}
}

// Name implements Sampler.
func (m *MultiChain) Name() string { return "multichain" }

// Run implements Sampler. Burnin applies to every chain; the Samples
// quota is split evenly across chains (each chain draws ceil(S/P), and the
// pooled set is truncated to S). The recorded SampleSet concatenates the
// chains with a total burn-in of Chains x Burnin leading... since draws
// are pooled per chain, the set instead marks Burnin as 0 and excludes
// burn-in draws entirely, which is the standard pooling.
func (m *MultiChain) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := m.Chains
	if p < 1 {
		return nil, fmt.Errorf("core: MultiChain needs at least 1 chain, got %d", p)
	}
	perChain := (cfg.Samples + p - 1) / p
	results := make([]*Result, p)
	errs := make([]error, p)
	m.dev.Launch(p, func(chain int) {
		sub := NewMH(m.eval)
		sub.SerialEval = m.SerialEval
		results[chain], errs[chain] = sub.Run(init, ChainConfig{
			Theta:   cfg.Theta,
			Burnin:  cfg.Burnin,
			Samples: perChain,
			Seed:    cfg.Seed + uint64(chain)*0x01000193,
		})
	})
	for chain, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: chain %d: %w", chain, err)
		}
	}
	out := &SampleSet{
		NTips:  init.NTips(),
		Theta0: cfg.Theta,
		Burnin: 0,
		Stats:  make([]float64, 0, cfg.Samples),
		Ages:   make([][]float64, 0, cfg.Samples),
		LogLik: make([]float64, 0, cfg.Samples),
	}
	res := &Result{Samples: out}
	for _, r := range results {
		res.Accepted += r.Accepted
		res.Proposals += r.Proposals
		stats := r.Samples.PostBurninStats()
		agesList := r.Samples.PostBurninAges()
		lls := r.Samples.PostBurninLogLik()
		for i := range stats {
			if out.Len() >= cfg.Samples {
				break
			}
			out.Stats = append(out.Stats, stats[i])
			out.Ages = append(out.Ages, agesList[i])
			out.LogLik = append(out.LogLik, lls[i])
		}
	}
	res.Final = results[p-1].Final
	return res, nil
}
