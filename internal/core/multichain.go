package core

import (
	"fmt"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
)

// MultiChain is the classic parallelization the paper argues against
// (§3, Fig. 6): P independent Metropolis-Hastings chains run concurrently,
// each paying its own full burn-in, with the post-burn-in samples pooled.
// Total work is P·B + S for S pooled samples, so by Amdahl's law the
// speedup over a single chain saturates at (B+S)/B no matter how many
// processors are added — the motivation for the GMH sampler. Each chain
// is a delta-evaluated engine chain (with its own likelihood cache and
// resimulation scratch) unless SerialEval restores the reference mode;
// cheaper steps do not change the Amdahl argument, which is about burn-in
// replication, not per-step cost.
//
// The sampler is step-driven like the others: one Step is a parallel
// sweep in which every unfinished chain takes one Metropolis step on the
// device. Chains are fully independent — each owns its generator, engine
// state and recorder — so the lockstep sweeps produce exactly the draws
// the old run-each-chain-to-completion layout produced, and the sweep
// boundary is a consistent point to checkpoint the whole ensemble.
type MultiChain struct {
	eval   *felsen.Evaluator
	dev    *device.Device
	Chains int
	// SerialEval runs every chain in the LAMARC reference mode (full
	// per-step likelihood recomputation) instead of the chain engine's
	// delta evaluation — the historical measurement the Fig. 6 timings
	// are defined against.
	SerialEval bool
}

// NewMultiChain builds the P-independent-chains baseline on dev.
func NewMultiChain(eval *felsen.Evaluator, dev *device.Device, chains int) *MultiChain {
	return &MultiChain{eval: eval, dev: dev, Chains: chains}
}

// Name implements Sampler.
func (m *MultiChain) Name() string { return "multichain" }

// Run implements Sampler. Burnin applies to every chain; the Samples
// quota is split evenly across chains (each chain draws ceil(S/P), and the
// pooled set is truncated to S). The recorded SampleSet concatenates the
// chains with a total burn-in of Chains x Burnin leading... since draws
// are pooled per chain, the set instead marks Burnin as 0 and excludes
// burn-in draws entirely, which is the standard pooling.
func (m *MultiChain) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	return runStepped(m, init, cfg)
}

// mcRun is one started multichain ensemble: P independent MH runs driven
// in lockstep sweeps.
type mcRun struct {
	m       *MultiChain
	samples int // pooled post-burn-in quota
	nTips   int
	theta   float64
	subs    []*mhRun
	errs    []error
	kernel  func(chain int)
}

// Start implements StepSampler.
func (m *MultiChain) Start(init *gtree.Tree, cfg ChainConfig) (Stepper, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := m.Chains
	if p < 1 {
		return nil, fmt.Errorf("core: MultiChain needs at least 1 chain, got %d", p)
	}
	if cfg.ESSTarget > 0 || cfg.RHatTarget > 0 {
		// Each chain owns an even share of the pooled quota; a per-chain
		// stop rule against a pooled target is ill-defined, so the
		// ensemble rejects targets rather than guessing a split.
		return nil, fmt.Errorf("core: MultiChain does not support convergence stop targets")
	}
	perChain := (cfg.Samples + p - 1) / p
	r := &mcRun{
		m:       m,
		samples: cfg.Samples,
		nTips:   init.NTips(),
		theta:   cfg.Theta,
		subs:    make([]*mhRun, p),
		errs:    make([]error, p),
	}
	for chain := 0; chain < p; chain++ {
		sub := NewMH(m.eval)
		sub.SerialEval = m.SerialEval
		sc := ChainConfig{
			Theta:   cfg.Theta,
			Burnin:  cfg.Burnin,
			Samples: perChain,
			Seed:    cfg.Seed + uint64(chain)*0x01000193,
		}
		if cfg.Trace != nil {
			// Chains step concurrently inside the device launch, so each
			// one spills to its own sidecar file.
			t := *cfg.Trace
			t.Path = fmt.Sprintf("%s.c%d", cfg.Trace.Path, chain)
			sc.Trace = &t
		}
		run, err := sub.Start(init, sc)
		if err != nil {
			return nil, fmt.Errorf("core: chain %d: %w", chain, err)
		}
		r.subs[chain] = run.(*mhRun)
	}
	r.kernel = func(chain int) {
		if sub := r.subs[chain]; !sub.Done() {
			r.errs[chain] = sub.Step()
		}
	}
	return r, nil
}

// Step implements Stepper: one parallel sweep, each unfinished chain
// advancing by one Metropolis step.
func (r *mcRun) Step() error {
	r.m.dev.Launch(len(r.subs), r.kernel)
	for chain, err := range r.errs {
		if err != nil {
			return fmt.Errorf("core: chain %d: %w", chain, err)
		}
	}
	return nil
}

// Done implements Stepper.
func (r *mcRun) Done() bool {
	for _, sub := range r.subs {
		if !sub.Done() {
			return false
		}
	}
	return true
}

// Finish implements Stepper: pool the chains' post-burn-in draws, exactly
// the reduction the run-to-completion layout performed.
func (r *mcRun) Finish() (*Result, error) {
	out := &SampleSet{
		NTips:  r.nTips,
		Theta0: r.theta,
		Burnin: 0,
		Stats:  make([]float64, 0, r.samples),
		Ages:   make([][]float64, 0, r.samples),
		LogLik: make([]float64, 0, r.samples),
	}
	res := &Result{Samples: out}
	for _, sub := range r.subs {
		sr, err := sub.Finish()
		if err != nil {
			return nil, err
		}
		res.Accepted += sr.Accepted
		res.Proposals += sr.Proposals
		stats := sr.Samples.PostBurninStats()
		agesList := sr.Samples.PostBurninAges()
		lls := sr.Samples.PostBurninLogLik()
		for i := range stats {
			if out.Len() >= r.samples {
				break
			}
			out.Stats = append(out.Stats, stats[i])
			out.Ages = append(out.Ages, agesList[i])
			out.LogLik = append(out.LogLik, lls[i])
		}
		res.Final = sr.Final
	}
	return res, nil
}

// Snapshot implements SnapshotStepper: one MH snapshot per chain, in
// chain order.
func (r *mcRun) Snapshot() (*StepSnapshot, error) {
	subs := make([]*StepSnapshot, len(r.subs))
	for i, sub := range r.subs {
		snap, err := sub.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("core: chain %d: %w", i, err)
		}
		subs[i] = snap
	}
	return &StepSnapshot{Sampler: "multichain", Subs: subs}, nil
}

// Restore implements SnapshotStepper.
func (r *mcRun) Restore(s *StepSnapshot) error {
	if s.Sampler != "multichain" {
		return fmt.Errorf("core: %q snapshot restored into a multichain run", s.Sampler)
	}
	if len(s.Subs) != len(r.subs) {
		return fmt.Errorf("core: multichain snapshot has %d chains, run is configured for %d", len(s.Subs), len(r.subs))
	}
	for i, sub := range s.Subs {
		if err := r.subs[i].Restore(sub); err != nil {
			return fmt.Errorf("core: chain %d: %w", i, err)
		}
	}
	return nil
}
