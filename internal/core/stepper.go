package core

import (
	"mpcgs/internal/gtree"
)

// Stepper is a sampling run that has been started but is driven from
// outside: each Step advances the chain by one transition (one Metropolis
// step, one GMH proposal round, one tempered-ladder sweep), Done reports
// whether every configured draw has been recorded, and Finish finalizes
// the Result.
//
// Steppers exist so a run loop is not owned by the sampler: a batch
// scheduler can hold many concurrent runs and interleave their steps over
// one shared device pool, time-slicing tenants at transition granularity.
// A Stepper is not safe for concurrent use; it is the scheduling unit,
// and all of its state (PRNG streams, chain engine state, recorder) is
// owned by the run, so two runs never share mutable state and a run's
// draws are identical however its steps are interleaved with other runs'.
type Stepper interface {
	// Step performs one transition and records its draw(s). An error is
	// fatal to the run.
	Step() error
	// Done reports whether the configured number of draws is recorded.
	Done() bool
	// Finish returns the completed run's result. It must be called once,
	// after Done becomes true.
	Finish() (*Result, error)
}

// StepSampler is a Sampler whose run loop can be driven externally. Run
// remains the convenience entry point (start, step to completion,
// finish); Start exposes the pieces to a scheduler.
type StepSampler interface {
	Sampler
	Start(init *gtree.Tree, cfg ChainConfig) (Stepper, error)
}

// runStepped is Sampler.Run for step-driven samplers: drive a fresh run
// to completion. Because both the standalone path and the batch scheduler
// go through exactly this Start/Step/Finish sequence, a job's draws in
// batch mode are bit-identical to its standalone run.
func runStepped(s StepSampler, init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	run, err := s.Start(init, cfg)
	if err != nil {
		return nil, err
	}
	for !run.Done() {
		if err := run.Step(); err != nil {
			return nil, err
		}
	}
	return run.Finish()
}
