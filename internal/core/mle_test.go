package core

import (
	"math"
	"testing"

	"mpcgs/internal/coalprior"
	"mpcgs/internal/device"
	"mpcgs/internal/logspace"
)

func syntheticSet(theta0 float64, nTips int, stats []float64) *SampleSet {
	return &SampleSet{
		NTips:  nTips,
		Theta0: theta0,
		Stats:  stats,
		LogLik: make([]float64, len(stats)),
	}
}

func TestRelLogLikelihoodAtTheta0IsZero(t *testing.T) {
	s := syntheticSet(1.3, 5, []float64{0.8, 1.2, 2.0})
	if got := RelLogLikelihood(s, 1.3, device.Serial()); math.Abs(got) > 1e-12 {
		t.Errorf("log L(theta0) = %v, want 0", got)
	}
}

func TestRelLogLikelihoodMatchesDirectMean(t *testing.T) {
	s := syntheticSet(1.0, 4, []float64{0.5, 1.5, 3.0, 0.9})
	theta := 2.2
	terms := make([]float64, len(s.Stats))
	for i, st := range s.Stats {
		terms[i] = coalprior.LogPriorRatio(4, st, theta, 1.0)
	}
	want := logspace.Mean(terms)
	got := RelLogLikelihood(s, theta, device.New(4))
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("RelLogLikelihood = %v, want %v", got, want)
	}
}

func TestMaximizeThetaSingleSampleClosedForm(t *testing.T) {
	// With one sample, log L(theta) = (n-1) log(theta0/theta)
	// - S (1/theta - 1/theta0), maximized at theta* = S/(n-1).
	nTips := 6
	sumKKT := 3.7
	want := sumKKT / float64(nTips-1)
	s := syntheticSet(0.5, nTips, []float64{sumKKT})
	got, err := MaximizeTheta(s, MLEConfig{}, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-4*want {
		t.Errorf("MaximizeTheta = %v, want %v", got, want)
	}
}

func TestMaximizeThetaFarStart(t *testing.T) {
	// Driving theta far below the maximizer (the paper's Fig. 5 setup:
	// theta0 = 0.01, truth near 1): the ascent must still climb there.
	nTips := 10
	sumKKT := 9.0 // theta* = 1.0
	s := syntheticSet(0.01, nTips, []float64{sumKKT})
	got, err := MaximizeTheta(s, MLEConfig{}, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0) > 1e-3 {
		t.Errorf("MaximizeTheta from 0.01 = %v, want 1.0", got)
	}
}

func TestMaximizeThetaMatchesGridSearch(t *testing.T) {
	s := syntheticSet(0.8, 7, []float64{2.0, 3.5, 5.0, 4.2, 2.8})
	dev := device.Serial()
	got, err := MaximizeTheta(s, MLEConfig{}, dev)
	if err != nil {
		t.Fatal(err)
	}
	bestTheta, bestVal := 0.0, math.Inf(-1)
	for theta := 0.05; theta < 5; theta += 0.0005 {
		if v := RelLogLikelihood(s, theta, dev); v > bestVal {
			bestVal, bestTheta = v, theta
		}
	}
	if math.Abs(got-bestTheta) > 0.002 {
		t.Errorf("MaximizeTheta = %v, grid search = %v", got, bestTheta)
	}
	if RelLogLikelihood(s, got, dev) < bestVal-1e-6 {
		t.Errorf("ascent value %v below grid value %v", RelLogLikelihood(s, got, dev), bestVal)
	}
}

func TestMaximizeThetaStaysPositive(t *testing.T) {
	// A sample set pushing theta towards zero must not cross it.
	s := syntheticSet(1.0, 4, []float64{1e-6})
	got, err := MaximizeTheta(s, MLEConfig{}, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Errorf("MaximizeTheta = %v, want positive", got)
	}
}

func TestCurveShape(t *testing.T) {
	// The relative likelihood curve must peak near the analytic maximizer
	// and fall off on both sides (paper Fig. 5).
	nTips := 6
	s := syntheticSet(0.3, nTips, []float64{5.0})
	want := 1.0 // S/(n-1)
	thetas := []float64{0.1, 0.5, want, 2.0, 5.0}
	vals := Curve(s, thetas, device.New(2))
	peak := vals[2]
	for i, v := range vals {
		if i != 2 && v >= peak {
			t.Errorf("curve at theta=%v (%v) not below peak at %v (%v)", thetas[i], v, want, peak)
		}
	}
}

func TestRelLogLikelihoodPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty sample set")
		}
	}()
	s := &SampleSet{NTips: 4, Theta0: 1}
	RelLogLikelihood(s, 1, device.Serial())
}

func TestMaximizeThetaParallelMatchesSerial(t *testing.T) {
	s := syntheticSet(0.6, 8, []float64{1.0, 2.0, 3.0, 4.0, 5.0, 2.5, 3.5, 1.5})
	a, err := MaximizeTheta(s, MLEConfig{}, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximizeTheta(s, MLEConfig{}, device.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("serial %v != parallel %v", a, b)
	}
}
