package core

import (
	"fmt"
	"math"

	"mpcgs/internal/coalprior"
	"mpcgs/internal/device"
)

// Growth estimation implements the extension the paper's §7 calls for:
// estimating a second population parameter from the same genealogy
// samples. The chain is driven at (θ0, g = 0) — the constant-size
// proposal kernel — and the two-parameter relative likelihood
//
//	L(θ, g) = mean_i P(G_i | θ, g) / P(G_i | θ0, 0)
//
// is evaluated over the stored per-sample coalescent ages by importance
// reweighting, then maximized by the same trust-region gradient ascent as
// Algorithm 2, jointly over (θ, g). Estimates are reliable for moderate
// growth; strongly growing populations would need a growth-aware proposal
// kernel ("a new proposal kernel to propose genealogies with the posterior
// probability of that parameter", §7), which remains future work here too.

// RelLogLikelihoodGrowth returns log L(θ, g) over the sample set by the
// posterior likelihood kernel structure of §5.2.3 (per-sample threads,
// max-normalization, additive reduction).
func RelLogLikelihoodGrowth(s *SampleSet, theta, g float64, dev *device.Device) float64 {
	if dev == nil {
		dev = device.Serial()
	}
	ages := s.PostBurninAges()
	if len(ages) == 0 {
		panic("core: RelLogLikelihoodGrowth with no post-burn-in samples")
	}
	terms := make([]float64, len(ages))
	dev.Launch(len(ages), func(i int) {
		terms[i] = coalprior.LogPriorGrowthRatio(s.NTips, ages[i], theta, g, s.Theta0, 0)
	})
	return dev.ReduceLogSum(terms) - math.Log(float64(len(terms)))
}

// GrowthEstimate is the result of the two-parameter maximization.
type GrowthEstimate struct {
	Theta  float64
	Growth float64
	// LogL is the relative log-likelihood at the maximum.
	LogL float64
}

// MaximizeThetaGrowth jointly maximizes L(θ, g) from the sample set,
// starting at (θ0, 0). The ascent mirrors Algorithm 2 with a central
// finite-difference gradient in both coordinates, per-coordinate trust
// regions (θ may at most double per step; g moves at most gStep), and
// step-halving on non-improvement.
func MaximizeThetaGrowth(s *SampleSet, cfg MLEConfig, dev *device.Device) (*GrowthEstimate, error) {
	c := cfg.withDefaults()
	theta := s.Theta0
	if theta <= 0 {
		return nil, fmt.Errorf("core: sample set has non-positive driving theta %v", theta)
	}
	g := 0.0
	obj := func(th, gr float64) float64 { return RelLogLikelihoodGrowth(s, th, gr, dev) }

	// The growth trust region: |Δg| per iteration, in units of inverse
	// tree height so it is scale-appropriate for the data.
	meanHeight := 0.0
	ages := s.PostBurninAges()
	for _, a := range ages {
		meanHeight += a[len(a)-1]
	}
	meanHeight /= float64(len(ages))
	gStep := 1.0
	if meanHeight > 0 {
		gStep = 2.0 / meanHeight
	}

	for iter := 0; iter < c.MaxIterations; iter++ {
		dTheta := c.Delta * theta
		dG := c.Delta * math.Max(1, math.Abs(g))
		gradT := (obj(theta+dTheta, g) - obj(theta-dTheta, g)) / (2 * dTheta)
		gradG := (obj(theta, g+dG) - obj(theta, g-dG)) / (2 * dG)

		stepT, stepG := gradT, gradG
		if math.Abs(stepT) > theta {
			stepT = math.Copysign(theta, stepT)
		}
		if math.Abs(stepG) > gStep {
			stepG = math.Copysign(gStep, stepG)
		}
		cur := obj(theta, g)
		halvings := 0
		for ; halvings < 200; halvings++ {
			nt, ng := theta+stepT, g+stepG
			if nt > 0 && obj(nt, ng) >= cur {
				break
			}
			stepT /= 2
			stepG /= 2
		}
		if halvings == 200 {
			break
		}
		theta += stepT
		g += stepG
		if math.Abs(gradT) <= c.Epsilon*theta && math.Abs(gradG) <= c.Epsilon*math.Max(1, math.Abs(g)) {
			break
		}
	}
	return &GrowthEstimate{Theta: theta, Growth: g, LogL: obj(theta, g)}, nil
}

// JointGenealogyMLE maximizes the exact joint log-likelihood
// Σ_i log P(G_i|θ,g) over fully observed genealogies (their coalescent
// ages). Unlike the relative likelihood above, this assumes the
// genealogies themselves are data — it is the estimator used to validate
// the growth prior against simulation, and a useful tool when true trees
// are known.
func JointGenealogyMLE(nTips int, ages [][]float64, dev *device.Device) (*GrowthEstimate, error) {
	if len(ages) == 0 {
		return nil, fmt.Errorf("core: JointGenealogyMLE with no genealogies")
	}
	if dev == nil {
		dev = device.Serial()
	}
	obj := func(th, gr float64) float64 {
		terms := make([]float64, len(ages))
		dev.Launch(len(ages), func(i int) {
			terms[i] = coalprior.LogPriorGrowth(nTips, ages[i], th, gr)
		})
		return dev.ReduceSum(terms)
	}
	// Moment-based start: constant-size MLE of theta.
	sum := 0.0
	for _, a := range ages {
		sum += sumKKTFromAges(nTips, a)
	}
	theta := sum / float64(len(ages)) / float64(nTips-1)
	g := 0.0
	meanHeight := 0.0
	for _, a := range ages {
		meanHeight += a[len(a)-1]
	}
	meanHeight /= float64(len(ages))
	gStep := 2.0 / math.Max(meanHeight, 1e-9)

	for iter := 0; iter < 300; iter++ {
		dTheta := 1e-6 * theta
		dG := 1e-6 * math.Max(1, math.Abs(g))
		gradT := (obj(theta+dTheta, g) - obj(theta-dTheta, g)) / (2 * dTheta)
		gradG := (obj(theta, g+dG) - obj(theta, g-dG)) / (2 * dG)
		n := float64(len(ages))
		stepT, stepG := gradT/n, gradG/n
		if math.Abs(stepT) > theta {
			stepT = math.Copysign(theta, stepT)
		}
		if math.Abs(stepG) > gStep {
			stepG = math.Copysign(gStep, stepG)
		}
		cur := obj(theta, g)
		halvings := 0
		for ; halvings < 100; halvings++ {
			nt, ng := theta+stepT, g+stepG
			if nt > 0 && obj(nt, ng) >= cur {
				break
			}
			stepT /= 2
			stepG /= 2
		}
		if halvings == 100 {
			break
		}
		theta += stepT
		g += stepG
		if math.Abs(gradT)/n <= 1e-8*theta && math.Abs(gradG)/n <= 1e-8*math.Max(1, math.Abs(g)) {
			break
		}
	}
	return &GrowthEstimate{Theta: theta, Growth: g, LogL: obj(theta, g)}, nil
}
