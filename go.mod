module mpcgs

go 1.24
