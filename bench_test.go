package mpcgs

// The benchmarks below regenerate the measurements behind every table and
// figure of the paper's evaluation section (§6). Each benchmark times the
// workload of one experiment; cmd/paperbench renders the corresponding
// tables and ASCII figures, and EXPERIMENTS.md records paper-vs-measured.
//
//	Table 1 / Fig. 13  BenchmarkTable1Accuracy{LAMARC,MPCGS}
//	Table 2 / Fig. 14  BenchmarkTable2SpeedupSamples/...
//	Table 3 / Fig. 15  BenchmarkTable3SpeedupSequences/...
//	Table 4 / Fig. 16  BenchmarkTable4SpeedupSeqLen/...
//	Fig. 5             BenchmarkFig5LikelihoodCurve
//	Fig. 2             BenchmarkFig2BurninTrace
//	Fig. 6             BenchmarkFig6Multichain/...
//
// Speedup benchmarks report the paper's headline quantity as the custom
// metric "speedup" (serial wall time / parallel wall time), measured
// within a single benchmark iteration so -benchtime=1x is sufficient.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/phylip"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// benchData caches simulated datasets across benchmark iterations.
var benchData = map[string]*phylip.Alignment{}

func benchAlignment(b *testing.B, nSeq, seqLen int, theta float64) *phylip.Alignment {
	b.Helper()
	key := fmt.Sprintf("%d-%d-%g", nSeq, seqLen, theta)
	if a, ok := benchData[key]; ok {
		return a
	}
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, theta, 20160401)
	if err != nil {
		b.Fatal(err)
	}
	benchData[key] = aln
	return aln
}

func benchEvaluator(b *testing.B, aln *phylip.Alignment, dev *device.Device) *felsen.Evaluator {
	b.Helper()
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		b.Fatal(err)
	}
	return eval
}

func benchRun(b *testing.B, s core.Sampler, aln *phylip.Alignment, burnin, samples int) time.Duration {
	b.Helper()
	init, err := core.InitialTree(aln, 1.0, 7)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Run(init, core.ChainConfig{Theta: 1.0, Burnin: burnin, Samples: samples, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	return time.Since(start)
}

// benchSpeedup times the serial LAMARC baseline against the parallel GMH
// sampler on the same workload and reports the ratio as the "speedup"
// metric, the y-axis of Figs. 14-16.
func benchSpeedup(b *testing.B, nSeq, seqLen, burnin, samples int) {
	aln := benchAlignment(b, nSeq, seqLen, 1.0)
	dev := device.New(0)
	defer dev.Close()
	serial := benchEvaluator(b, aln, device.Serial())
	parallel := benchEvaluator(b, aln, dev)
	lamarc := core.NewMH(serial)
	lamarc.SerialEval = true // the LAMARC reference: full recomputation per step
	var speedup float64
	for i := 0; i < b.N; i++ {
		tSerial := benchRun(b, lamarc, aln, burnin, samples)
		tParallel := benchRun(b, core.NewGMH(parallel, dev, dev.Workers()), aln, burnin, samples)
		speedup = tSerial.Seconds() / tParallel.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkTable1AccuracyLAMARC times one serial-MH θ estimation on the
// Table 1 workload (12 sequences x 200 bp).
func BenchmarkTable1AccuracyLAMARC(b *testing.B) {
	aln := benchAlignment(b, 12, 200, 1.0)
	eval := benchEvaluator(b, aln, device.Serial())
	dev := device.New(0)
	for i := 0; i < b.N; i++ {
		init, err := core.InitialTree(aln, 0.5, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.RunEM(core.NewMH(eval), init, core.EMConfig{
			InitialTheta: 0.5, Iterations: 2, Burnin: 200, Samples: 2000, Seed: 7,
		}, dev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1AccuracyMPCGS times one GMH θ estimation on the same
// workload.
func BenchmarkTable1AccuracyMPCGS(b *testing.B) {
	aln := benchAlignment(b, 12, 200, 1.0)
	dev := device.New(0)
	eval := benchEvaluator(b, aln, dev)
	for i := 0; i < b.N; i++ {
		init, err := core.InitialTree(aln, 0.5, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.RunEM(core.NewGMH(eval, dev, dev.Workers()), init, core.EMConfig{
			InitialTheta: 0.5, Iterations: 2, Burnin: 200, Samples: 2000, Seed: 7,
		}, dev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2SpeedupSamples sweeps the sample count (Fig. 14's x axis,
// scaled 10x down from the paper's 20k-100k so a full sweep stays fast).
func BenchmarkTable2SpeedupSamples(b *testing.B) {
	for _, n := range []int{2000, 4000, 8000} {
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			benchSpeedup(b, 12, 200, 200, n)
		})
	}
}

// BenchmarkTable3SpeedupSequences sweeps the sequence count (Fig. 15).
func BenchmarkTable3SpeedupSequences(b *testing.B) {
	for _, n := range []int{12, 24, 48} {
		b.Run(fmt.Sprintf("nseq=%d", n), func(b *testing.B) {
			benchSpeedup(b, n, 200, 100, 1000)
		})
	}
}

// BenchmarkTable4SpeedupSeqLen sweeps the sequence length (Fig. 16).
func BenchmarkTable4SpeedupSeqLen(b *testing.B) {
	for _, L := range []int{200, 600, 1000} {
		b.Run(fmt.Sprintf("bp=%d", L), func(b *testing.B) {
			benchSpeedup(b, 12, L, 100, 1000)
		})
	}
}

// BenchmarkFig5LikelihoodCurve times the single sampling pass plus curve
// evaluation behind Fig. 5.
func BenchmarkFig5LikelihoodCurve(b *testing.B) {
	aln := benchAlignment(b, 12, 200, 1.0)
	dev := device.New(0)
	eval := benchEvaluator(b, aln, dev)
	for i := 0; i < b.N; i++ {
		init, err := core.InitialTree(aln, 0.01, 7)
		if err != nil {
			b.Fatal(err)
		}
		run, err := core.NewGMH(eval, dev, dev.Workers()).Run(init, core.ChainConfig{
			Theta: 0.01, Burnin: 200, Samples: 2000, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		grid := make([]float64, 0, 40)
		for x := 0.005; x <= 10.0; x *= 1.25 {
			grid = append(grid, x)
		}
		core.Curve(run.Samples, grid, dev)
	}
}

// BenchmarkFig2BurninTrace times the cold-start trace run of Fig. 2.
func BenchmarkFig2BurninTrace(b *testing.B) {
	aln := benchAlignment(b, 12, 200, 1.0)
	eval := benchEvaluator(b, aln, device.Serial())
	for i := 0; i < b.N; i++ {
		init, err := core.InitialTree(aln, 1.0, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.NewMH(eval).Run(init, core.ChainConfig{
			Theta: 1.0, Burnin: 0, Samples: 2000, Seed: 7,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Multichain compares the multichain baseline against GMH at
// increasing parallelism, reporting the GMH advantage as "gmh_advantage"
// (multichain wall / GMH wall). The workload follows Fig. 6's regime:
// burn-in comparable to the sampling budget, so the per-chain burn-in
// genuinely floors the multichain wall time at higher parallelism.
func BenchmarkFig6Multichain(b *testing.B) {
	maxP := runtime.GOMAXPROCS(0)
	for p := 1; p <= maxP; p *= 4 {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			aln := benchAlignment(b, 12, 400, 1.0)
			dev := device.New(p)
			serial := benchEvaluator(b, aln, device.Serial())
			parallel := benchEvaluator(b, aln, dev)
			mc := core.NewMultiChain(serial, dev, p)
			mc.SerialEval = true // the historical LAMARC-chain measurement
			var advantage float64
			for i := 0; i < b.N; i++ {
				tMC := benchRun(b, mc, aln, 1500, 1500)
				tGMH := benchRun(b, core.NewGMH(parallel, dev, p), aln, 1500, 1500)
				advantage = tMC.Seconds() / tGMH.Seconds()
			}
			b.ReportMetric(advantage, "gmh_advantage")
		})
	}
}

// BenchmarkProposalKernel times one resimulation + likelihood round of the
// GMH proposal kernel, the unit of work the paper's §5.2.1 kernel
// performs per thread.
func BenchmarkProposalKernel(b *testing.B) {
	aln := benchAlignment(b, 12, 200, 1.0)
	dev := device.New(0)
	eval := benchEvaluator(b, aln, dev)
	init, err := core.InitialTree(aln, 1.0, 7)
	if err != nil {
		b.Fatal(err)
	}
	g := core.NewGMH(eval, dev, dev.Workers())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(init, core.ChainConfig{Theta: 1.0, Burnin: 0, Samples: dev.Workers(), Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataLikelihood times the Felsenstein pruning evaluation itself,
// serial vs device-parallel (the §5.2.2 kernel).
func BenchmarkDataLikelihood(b *testing.B) {
	for _, L := range []int{200, 1000} {
		aln := benchAlignment(b, 12, L, 1.0)
		init, err := core.InitialTree(aln, 1.0, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("serial/bp=%d", L), func(b *testing.B) {
			eval := benchEvaluator(b, aln, device.Serial())
			for i := 0; i < b.N; i++ {
				eval.LogLikelihoodSerial(init)
			}
		})
		b.Run(fmt.Sprintf("parallel/bp=%d", L), func(b *testing.B) {
			eval := benchEvaluator(b, aln, device.New(0))
			for i := 0; i < b.N; i++ {
				eval.LogLikelihood(init)
			}
		})
	}
}
