// Package mpcgs is a multiple-proposal coalescent genealogy sampler: a
// scalable parallel reimplementation of maximum-likelihood estimation of
// the population parameter θ = 2·N_e·μ from sequence data, after
// "Scalable Parallelization of a Markov Coalescent Genealogy Sampler"
// (Davis, 2016/2017).
//
// The estimator alternates two phases (an Expectation-Maximization loop):
// a Markov chain samples genealogical trees from the posterior P(G|D,θ0)
// at a driving value θ0, and a gradient ascent maximizes the relative
// likelihood L(θ) of the sampled trees to produce the next driving value.
// The sampling phase is parallelized with Calderhead's Generalized
// Metropolis-Hastings construction: each iteration generates many
// proposals at once — all resimulating the same neighbourhood of the
// current genealogy, so any member of the set can propose the rest — and
// then samples repeatedly from the resulting index chain. Unlike the
// classic run-independent-chains approach, burn-in itself parallelizes,
// removing the Amdahl bottleneck.
//
// Quick start:
//
//	aln, err := mpcgs.LoadAlignment("seqs.phy")
//	res, err := mpcgs.Run(mpcgs.Config{Alignment: aln, InitialTheta: 0.1})
//	fmt.Println(res.Theta)
package mpcgs

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/phylip"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// Alignment is a set of equal-length nucleotide sequences, the data D of
// the estimator.
type Alignment struct {
	aln *phylip.Alignment
}

// NSeq returns the number of sequences.
func (a *Alignment) NSeq() int { return a.aln.NSeq() }

// SeqLen returns the common sequence length.
func (a *Alignment) SeqLen() int { return a.aln.SeqLen() }

// Names returns the sequence labels in order.
func (a *Alignment) Names() []string { return append([]string(nil), a.aln.Names...) }

// Sequence returns the i-th sequence as a string, with '?' marking
// missing-data positions.
func (a *Alignment) Sequence(i int) string { return a.aln.Seqs[i].String() }

// WritePhylip renders the alignment in PHYLIP format.
func (a *Alignment) WritePhylip(w io.Writer) error { return phylip.Write(w, a.aln) }

// ReadAlignment parses a PHYLIP alignment (sequential or interleaved).
func ReadAlignment(r io.Reader) (*Alignment, error) {
	aln, err := phylip.Read(r)
	if err != nil {
		return nil, err
	}
	return &Alignment{aln: aln}, nil
}

// LoadAlignment reads a PHYLIP alignment from a file.
func LoadAlignment(path string) (*Alignment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := ReadAlignment(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// SimulateAlignment generates sequence data with a known true θ by the
// paper's §6.1 pipeline: a Kingman coalescent genealogy (the ms substrate)
// and F84 sequence evolution along it (the seq-gen substrate).
func SimulateAlignment(nSeq, length int, theta float64, seed uint64) (*Alignment, error) {
	aln, _, err := seqgen.SimulateData(nSeq, length, theta, seed)
	if err != nil {
		return nil, err
	}
	return &Alignment{aln: aln}, nil
}

// SamplerKind selects the sampling algorithm.
type SamplerKind string

// Available samplers.
const (
	// SamplerGMH is the paper's multiple-proposal Generalized
	// Metropolis-Hastings sampler (the default).
	SamplerGMH SamplerKind = "gmh"
	// SamplerMH is the serial single-chain LAMARC baseline.
	SamplerMH SamplerKind = "mh"
	// SamplerMultiChain runs independent MH chains in parallel, the
	// classic approach whose per-chain burn-in limits scalability.
	SamplerMultiChain SamplerKind = "multichain"
	// SamplerHeated is Metropolis-coupled MCMC (MC³): a ladder of
	// tempered chains with state swaps, the search strategy of the
	// production LAMARC package.
	SamplerHeated SamplerKind = "heated"
)

// ModelKind selects the substitution model of the likelihood.
type ModelKind string

// Available likelihood models.
const (
	// ModelF81 is the paper's Eq. 20 model with empirical base
	// frequencies (the default).
	ModelF81 ModelKind = "f81"
	// ModelJC69 is Jukes-Cantor: Eq. 20 with uniform frequencies.
	ModelJC69 ModelKind = "jc69"
	// ModelF84 adds a transition/transversion bias (kappa 2).
	ModelF84 ModelKind = "f84"
)

// Config parameterizes a full θ estimation run. Zero values select
// sensible defaults for everything but Alignment and InitialTheta.
type Config struct {
	// Alignment is the sequence data (required, at least 3 sequences).
	Alignment *Alignment
	// InitialTheta is the starting driving value θ0 (required, positive).
	// The method is designed to be insensitive to it (§5.1.1).
	InitialTheta float64
	// Sampler selects the algorithm; default SamplerGMH.
	Sampler SamplerKind
	// Model selects the likelihood model; default ModelF81.
	Model ModelKind
	// Workers is the device parallelism; default runtime.GOMAXPROCS(0).
	Workers int
	// Proposals is the GMH proposal-set size N; default Workers.
	Proposals int
	// Chains is the heated/multichain chain count; default Workers.
	Chains int
	// MaxTemp is the heated ladder's hottest temperature; default 8.
	// Values below 1 are rejected.
	MaxTemp float64
	// SwapEvery is the number of within-chain steps between heated swap
	// attempts; default 1. Negative values are rejected.
	SwapEvery int
	// AdaptLadder turns on swap-rate-driven temperature-ladder
	// adaptation for the heated sampler: during burn-in the ladder's
	// interior temperatures are retuned toward uniform per-pair swap
	// acceptance, then frozen for the recorded draws.
	AdaptLadder bool
	// SwapWindow is the sliding-window size for per-pair swap-rate
	// tracking; default 64. Negative values are rejected.
	SwapWindow int
	// Burnin draws are discarded at the start of each EM iteration;
	// default 1000.
	Burnin int
	// Samples draws are recorded per EM iteration; default 10000.
	Samples int
	// EMIterations bounds the outer loop; default 10.
	EMIterations int
	// Seed drives all pseudo-randomness; default 1.
	Seed uint64
	// EstimateGrowth additionally maximizes the two-parameter relative
	// likelihood L(θ, g) over the final sample set, reporting an
	// exponential growth rate alongside θ (the paper's §7 extension).
	EstimateGrowth bool
}

func (c Config) withDefaults() Config {
	if c.Sampler == "" {
		c.Sampler = SamplerGMH
	}
	if c.Model == "" {
		c.Model = ModelF81
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Proposals <= 0 {
		c.Proposals = c.Workers
	}
	if c.Chains <= 0 {
		c.Chains = c.Workers
	}
	if c.Burnin <= 0 {
		c.Burnin = 1000
	}
	if c.Samples <= 0 {
		c.Samples = 10000
	}
	if c.EMIterations <= 0 {
		c.EMIterations = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// EMIteration reports one round of the outer loop.
type EMIteration struct {
	ThetaIn        float64
	ThetaOut       float64
	AcceptanceRate float64
	MeanLogLik     float64
}

// Diagnostics summarizes chain health for the final EM iteration.
type Diagnostics struct {
	// ESS is the effective sample size of the log-likelihood trace.
	ESS float64
	// GewekeZ is the stationarity z-score; |z| below ~2 is consistent
	// with a converged chain.
	GewekeZ float64
	// SuggestedBurnin is the data-driven burn-in the trace itself
	// suggests.
	SuggestedBurnin int
	// BurninSufficient reports whether the configured burn-in covered
	// the detected transient.
	BurninSufficient bool
}

// GrowthResult is the optional two-parameter estimate.
type GrowthResult struct {
	Theta  float64
	Growth float64
}

// SwapReport is the heated sampler's per-pair swap-rate diagnostic:
// entry i describes the exchanges between adjacent rungs i and i+1 of
// the final EM iteration. A healthy ladder has roughly uniform rates
// across pairs; a pair near zero marks a temperature gap states cannot
// cross (the adaptive ladder's target is to flatten this profile).
type SwapReport struct {
	// Betas is the final β schedule, β_0 = 1 down to β_{P-1}.
	Betas []float64
	// Attempts and Accepts count estimation-phase (post-burn-in) swap
	// proposals per adjacent pair: the rates of the schedule the
	// recorded draws were sampled under, free of the burn-in transient
	// (and, with AdaptLadder, of the still-moving ladder).
	Attempts []int64
	Accepts  []int64
	// Adapted reports whether the ladder ran with adaptation on, and
	// Adaptations how many schedule updates were applied. Adapted with
	// zero Adaptations means adaptation never engaged: the burn-in was
	// shorter than the warm-up (every pair's SwapWindow filling once).
	Adapted     bool
	Adaptations int64
}

// Rates returns the per-pair swap acceptance rates (NaN for a pair
// never attempted).
func (s *SwapReport) Rates() []float64 {
	return core.PairRates(s.Accepts, s.Attempts)
}

// Result is the outcome of a full estimation run.
type Result struct {
	// Theta is the maximum likelihood estimate of θ.
	Theta float64
	// History records the EM trajectory.
	History []EMIteration
	// FinalTree is the last sampled genealogy in Newick form.
	FinalTree string
	// Diagnostics reports convergence health of the final iteration.
	Diagnostics Diagnostics
	// Growth holds the (θ, g) estimate when Config.EstimateGrowth is
	// set, nil otherwise.
	Growth *GrowthResult
	// SwapReport summarizes the heated sampler's temperature ladder over
	// the final EM iteration: the β schedule (adapted, when AdaptLadder
	// is on) and the per-adjacent-pair swap counts. Nil for other
	// samplers.
	SwapReport *SwapReport

	lastSet *core.SampleSet
	workers int
}

// Curve evaluates the relative log-likelihood log L(θ) of the final
// sample set over the given θ grid (the curve of paper Fig. 5).
func (r *Result) Curve(thetas []float64) []float64 {
	dev := device.New(r.workers)
	defer dev.Close()
	return core.Curve(r.lastSet, thetas, dev)
}

// Run performs the full maximum likelihood estimation of θ.
func Run(cfg Config) (*Result, error) {
	c := cfg.withDefaults()
	if c.Alignment == nil {
		return nil, fmt.Errorf("mpcgs: Config.Alignment is required")
	}
	if c.InitialTheta <= 0 {
		return nil, fmt.Errorf("mpcgs: Config.InitialTheta must be positive, got %v", c.InitialTheta)
	}
	aln := c.Alignment.aln
	if aln.NSeq() < 3 {
		return nil, fmt.Errorf("mpcgs: need at least 3 sequences, got %d", aln.NSeq())
	}

	model, err := buildModel(c.Model, aln)
	if err != nil {
		return nil, err
	}
	dev := device.New(c.Workers)
	defer dev.Close()
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		return nil, err
	}
	sampler, err := buildSampler(c, eval, dev)
	if err != nil {
		return nil, err
	}
	init, err := core.InitialTree(aln, c.InitialTheta, c.Seed)
	if err != nil {
		return nil, err
	}
	emRes, err := core.RunEM(sampler, init, core.EMConfig{
		InitialTheta: c.InitialTheta,
		Iterations:   c.EMIterations,
		Burnin:       c.Burnin,
		Samples:      c.Samples,
		Seed:         c.Seed,
	}, dev)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Theta:       emRes.Theta,
		FinalTree:   emRes.FinalState.String(),
		Diagnostics: Diagnostics(core.Diagnose(emRes.LastSet)),
		lastSet:     emRes.LastSet,
		workers:     c.Workers,
	}
	for _, h := range emRes.History {
		res.History = append(res.History, EMIteration(h))
	}
	if run := emRes.LastRun; run != nil && len(run.PairSwapAttempts) > 0 {
		res.SwapReport = &SwapReport{
			Betas:       run.Betas,
			Attempts:    run.EstPairSwapAttempts,
			Accepts:     run.EstPairSwaps,
			Adapted:     run.LadderAdapted,
			Adaptations: run.LadderAdaptations,
		}
	}
	if c.EstimateGrowth {
		est, err := core.MaximizeThetaGrowth(emRes.LastSet, core.MLEConfig{}, dev)
		if err != nil {
			return nil, err
		}
		res.Growth = &GrowthResult{Theta: est.Theta, Growth: est.Growth}
	}
	return res, nil
}

// EstimateTheta is the one-call convenience API: estimate θ from an
// alignment with default settings.
func EstimateTheta(aln *Alignment, initialTheta float64) (float64, error) {
	res, err := Run(Config{Alignment: aln, InitialTheta: initialTheta})
	if err != nil {
		return 0, err
	}
	return res.Theta, nil
}

// BayesResult summarizes a Bayesian posterior sample of θ.
type BayesResult struct {
	// PosteriorMean and PosteriorMedian summarize the θ draws.
	PosteriorMean   float64
	PosteriorMedian float64
	// CredibleLow and CredibleHigh bound the central 95% interval.
	CredibleLow, CredibleHigh float64
	// Thetas holds the post-burn-in posterior draws.
	Thetas []float64
}

// RunBayesian samples the joint posterior P(G, θ|D) under a log-uniform
// prior on θ — the Bayesian estimation mode of LAMARC 2.0 — and returns
// posterior summaries instead of a point estimate. Config.InitialTheta
// seeds the chain; Sampler/Proposals/EMIterations are ignored.
func RunBayesian(cfg Config) (*BayesResult, error) {
	c := cfg.withDefaults()
	if c.Alignment == nil {
		return nil, fmt.Errorf("mpcgs: Config.Alignment is required")
	}
	if c.InitialTheta <= 0 {
		return nil, fmt.Errorf("mpcgs: Config.InitialTheta must be positive, got %v", c.InitialTheta)
	}
	aln := c.Alignment.aln
	if aln.NSeq() < 3 {
		return nil, fmt.Errorf("mpcgs: need at least 3 sequences, got %d", aln.NSeq())
	}
	model, err := buildModel(c.Model, aln)
	if err != nil {
		return nil, err
	}
	dev := device.New(c.Workers)
	defer dev.Close()
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		return nil, err
	}
	init, err := core.InitialTree(aln, c.InitialTheta, c.Seed)
	if err != nil {
		return nil, err
	}
	run, err := core.NewBayesian(eval, dev).Run(init, core.ChainConfig{
		Theta:   c.InitialTheta,
		Burnin:  c.Burnin,
		Samples: c.Samples,
		Seed:    c.Seed,
	})
	if err != nil {
		return nil, err
	}
	thetas := append([]float64(nil), run.Thetas[run.Samples.Burnin:]...)
	sorted := append([]float64(nil), thetas...)
	sort.Float64s(sorted)
	res := &BayesResult{
		PosteriorMean:   run.PosteriorMeanTheta(),
		PosteriorMedian: sorted[len(sorted)/2],
		CredibleLow:     sorted[int(0.025*float64(len(sorted)))],
		CredibleHigh:    sorted[int(0.975*float64(len(sorted)))],
		Thetas:          thetas,
	}
	return res, nil
}

func buildModel(kind ModelKind, aln *phylip.Alignment) (subst.Model, error) {
	switch kind {
	case ModelF81:
		return subst.NewF81(aln.BaseFreqs(), true)
	case ModelJC69:
		return subst.NewJC69(), nil
	case ModelF84:
		return subst.NewF84(aln.BaseFreqs(), 2.0, true)
	default:
		return nil, fmt.Errorf("mpcgs: unknown model %q", kind)
	}
}

func buildSampler(c Config, eval *felsen.Evaluator, dev *device.Device) (core.Sampler, error) {
	switch c.Sampler {
	case SamplerGMH:
		return core.NewGMH(eval, dev, c.Proposals), nil
	case SamplerMH:
		return core.NewMH(eval), nil
	case SamplerMultiChain:
		return core.NewMultiChain(eval, dev, c.Chains), nil
	case SamplerHeated:
		h := core.NewHeated(eval, dev, c.Chains)
		h.MaxTemp = c.MaxTemp
		h.SwapEvery = c.SwapEvery
		h.Adapt = c.AdaptLadder
		h.SwapWindow = c.SwapWindow
		return h, nil
	default:
		return nil, fmt.Errorf("mpcgs: unknown sampler %q", c.Sampler)
	}
}
