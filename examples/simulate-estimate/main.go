// Simulate-estimate walks the paper's full §6.1 accuracy pipeline
// explicitly, using the substrate packages directly:
//
//  1. draw a true genealogy from the coalescent (the ms substrate),
//  2. evolve F84 sequences along it (the seq-gen substrate),
//  3. round-trip the data through the PHYLIP format,
//  4. estimate theta with both the serial LAMARC-style sampler and the
//     parallel GMH sampler, and compare.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/mssim"
	"mpcgs/internal/phylip"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func main() {
	const (
		trueTheta = 2.0
		nSeq      = 10
		seqLen    = 300
		seed      = 2024
	)

	// 1. True genealogy.
	trees, err := mssim.Simulate(mssim.Config{NSam: nSeq, Reps: 1, Theta: trueTheta, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	truth := trees[0]
	fmt.Printf("true genealogy height: %.4f (expected %.4f)\n",
		truth.Height(), trueTheta*(1-1/float64(nSeq)))

	// 2. Sequence evolution under F84.
	aln, err := seqgen.Simulate(truth, seqgen.Config{Length: seqLen, Seed: seed + 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. PHYLIP round trip, as the real tools would exchange data.
	var buf bytes.Buffer
	if err := phylip.Write(&buf, aln); err != nil {
		log.Fatal(err)
	}
	aln, err = phylip.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d sequences x %d bp\n", aln.NSeq(), aln.SeqLen())

	// 4. Estimate with both samplers over the identical substrate.
	dev := device.New(0)
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		log.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		log.Fatal(err)
	}
	emCfg := core.EMConfig{
		InitialTheta: 0.5,
		Iterations:   4,
		Burnin:       500,
		Samples:      4000,
		Seed:         seed + 2,
	}
	for _, s := range []core.Sampler{
		core.NewMH(eval),
		core.NewGMH(eval, dev, dev.Workers()),
	} {
		init, err := core.InitialTree(aln, emCfg.InitialTheta, seed+3)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.RunEM(s, init, emCfg, dev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s theta = %.4f (true %.2f)\n", s.Name()+":", res.Theta, trueTheta)
	}
}
