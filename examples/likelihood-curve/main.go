// Likelihood-curve reproduces the shape of the paper's Figure 5: sampling
// genealogies driven at θ0 = 0.01 from data whose true θ is 1.0, then
// plotting the relative likelihood L(θ)/L(θ0). The curve should peak near
// the true value despite the far-off driving value.
package main

import (
	"fmt"
	"log"

	"mpcgs"
	"mpcgs/internal/stats"
)

func main() {
	const (
		trueTheta = 1.0
		theta0    = 0.01
	)
	aln, err := mpcgs.SimulateAlignment(12, 200, trueTheta, 99)
	if err != nil {
		log.Fatal(err)
	}
	// A single EM iteration: one sampling pass at the driving value.
	res, err := mpcgs.Run(mpcgs.Config{
		Alignment:    aln,
		InitialTheta: theta0,
		Burnin:       500,
		Samples:      8000,
		EMIterations: 1,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}

	var grid []float64
	for x := 0.005; x <= 10.0; x *= 1.2 {
		grid = append(grid, x)
	}
	vals := res.Curve(grid)
	pts := map[string][]stats.Point{}
	best := 0
	for i, x := range grid {
		pts["log L"] = append(pts["log L"], stats.Point{X: x, Y: vals[i]})
		if vals[i] > vals[best] {
			best = i
		}
	}
	fmt.Println(stats.AsciiPlot(
		fmt.Sprintf("Relative log-likelihood (true theta %.2f, driving %.2f)", trueTheta, theta0),
		"theta", "log L(theta)", pts, 64, 18))
	fmt.Printf("curve peaks near theta = %.3g; single-pass EM estimate %.3g\n", grid[best], res.Theta)
}
