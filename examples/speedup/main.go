// Speedup measures the GMH sampler against the serial LAMARC-style
// baseline as the worker count grows, on the paper's reference workload
// (12 sequences x 200 bp), and again at a longer sequence length where
// the paper found the parallelism most effective (§6.2).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func measure(nSeq, seqLen, burnin, samples int) {
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, 5)
	if err != nil {
		log.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		log.Fatal(err)
	}
	run := func(s core.Sampler) time.Duration {
		init, err := core.InitialTree(aln, 1.0, 6)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := s.Run(init, core.ChainConfig{Theta: 1.0, Burnin: burnin, Samples: samples, Seed: 8}); err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	}
	evalSerial, err := felsen.New(model, aln, device.Serial())
	if err != nil {
		log.Fatal(err)
	}
	lamarc := core.NewMH(evalSerial)
	lamarc.SerialEval = true // the LAMARC reference: full recomputation per step
	base := run(lamarc)
	fmt.Printf("workload %d x %d bp: serial MH baseline %v\n", nSeq, seqLen, base.Round(time.Millisecond))
	// Device workers are virtual GPU threads, not OS cores, so the sweep
	// covers the paper's ladder regardless of the host's core count (a
	// single-core host still benefits from the proposal-set machinery).
	maxP := 2 * runtime.GOMAXPROCS(0)
	if maxP < 8 {
		maxP = 8
	}
	for p := 2; p <= maxP; p *= 2 {
		dev := device.New(p)
		eval, err := felsen.New(model, aln, dev)
		if err != nil {
			log.Fatal(err)
		}
		t := run(core.NewGMH(eval, dev, p))
		dev.Close()
		fmt.Printf("  gmh workers=%-3d %-12v speedup %.2fx\n",
			p, t.Round(time.Millisecond), base.Seconds()/t.Seconds())
	}
	fmt.Println()
}

func main() {
	measure(12, 200, 200, 2000)
	measure(12, 1000, 100, 1000)
}
