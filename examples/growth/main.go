// Growth demonstrates the paper's §7 extension: estimating a second
// population parameter. Two datasets are simulated — one from a
// constant-size population and one from a strongly growing population —
// and the two-parameter relative likelihood L(θ, g) is maximized over the
// genealogies sampled from each. The growing dataset should receive a
// clearly positive growth estimate.
package main

import (
	"fmt"
	"log"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/mssim"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func estimate(trueG float64, seed uint64) *core.GrowthEstimate {
	const (
		nSeq   = 10
		seqLen = 300
		theta  = 1.0
	)
	src := rng.NewStreamSet(1, seed).Stream(0)
	tree, err := mssim.SimulateGrowth(mssim.TipNames(nSeq), theta, trueG, src)
	if err != nil {
		log.Fatal(err)
	}
	aln, err := seqgen.Simulate(tree, seqgen.Config{Length: seqLen, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	dev := device.New(0)
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		log.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		log.Fatal(err)
	}
	init, err := core.InitialTree(aln, theta, seed)
	if err != nil {
		log.Fatal(err)
	}
	run, err := core.NewGMH(eval, dev, dev.Workers()).Run(init, core.ChainConfig{
		Theta: theta, Burnin: 1000, Samples: 10000, Seed: seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.MaximizeThetaGrowth(run.Samples, core.MLEConfig{}, dev)
	if err != nil {
		log.Fatal(err)
	}
	return est
}

func main() {
	fmt.Println("two-parameter estimation (theta, g): sequences simulated at theta = 1.0")
	fmt.Printf("%-22s %-12s %-12s\n", "population", "theta-hat", "g-hat")
	for _, c := range []struct {
		label string
		g     float64
		seed  uint64
	}{
		{"constant (g = 0)", 0, 101},
		{"growing (g = 6)", 6, 102},
	} {
		est := estimate(c.g, c.seed)
		fmt.Printf("%-22s %-12.3f %-12.3f\n", c.label, est.Theta, est.Growth)
	}
	fmt.Println("\nthe growing population's compressed deep coalescences should")
	fmt.Println("pull its growth estimate well above the constant population's.")
}
