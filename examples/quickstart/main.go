// Quickstart: simulate a small dataset with a known θ and estimate it
// back with the default (GMH) sampler through the public API.
package main

import (
	"fmt"
	"log"

	"mpcgs"
)

func main() {
	const trueTheta = 1.0

	// Simulate 12 sequences of 200 bp from a coalescent genealogy at the
	// true theta (the paper's §6.1 data pipeline).
	aln, err := mpcgs.SimulateAlignment(12, 200, trueTheta, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d sequences x %d bp at true theta %.2f\n",
		aln.NSeq(), aln.SeqLen(), trueTheta)

	// Estimate theta starting from a deliberately bad initial guess.
	res, err := mpcgs.Run(mpcgs.Config{
		Alignment:    aln,
		InitialTheta: 0.1,
		Burnin:       500,
		Samples:      4000,
		EMIterations: 5,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range res.History {
		fmt.Printf("  EM %d: theta %.4f -> %.4f (acceptance %.2f)\n",
			i+1, h.ThetaIn, h.ThetaOut, h.AcceptanceRate)
	}
	fmt.Printf("estimated theta = %.4f (true %.2f)\n", res.Theta, trueTheta)
}
