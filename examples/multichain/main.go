// Multichain demonstrates the paper's core argument (§3, Fig. 6): running
// P independent Metropolis-Hastings chains parallelizes the sampling
// phase but not the burn-in, so wall time saturates at the burn-in cost,
// while the GMH sampler parallelizes both.
package main

import (
	"fmt"
	"log"
	"time"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func main() {
	// Burn-in comparable to the sampling budget and enough work per
	// likelihood evaluation: the regime of the paper's Fig. 6, where the
	// per-chain burn-in genuinely floors the multichain wall time.
	const (
		burnin  = 1500
		samples = 1500
	)
	aln, _, err := seqgen.SimulateData(12, 400, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("burn-in %d draws, %d pooled samples; Amdahl bound for multichain: %.2fx\n\n",
		burnin, samples, float64(burnin+samples)/float64(burnin))
	fmt.Printf("%-4s %-16s %-16s %-24s\n", "P", "multichain", "gmh", "model (B+N/P)/(B+N)")

	for _, p := range []int{1, 2, 4, 8, 16} {
		dev := device.New(p)
		evalSerial, err := felsen.New(model, aln, device.Serial())
		if err != nil {
			log.Fatal(err)
		}
		evalPar, err := felsen.New(model, aln, dev)
		if err != nil {
			log.Fatal(err)
		}
		run := func(s core.Sampler) time.Duration {
			init, err := core.InitialTree(aln, 1.0, 13)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			if _, err := s.Run(init, core.ChainConfig{
				Theta: 1.0, Burnin: burnin, Samples: samples, Seed: 17,
			}); err != nil {
				log.Fatal(err)
			}
			return time.Since(start)
		}
		mc := core.NewMultiChain(evalSerial, dev, p)
		mc.SerialEval = true // the historical LAMARC-chain measurement
		tMC := run(mc)
		tGMH := run(core.NewGMH(evalPar, dev, p))
		model := (float64(burnin) + float64(samples)/float64(p)) / float64(burnin+samples)
		fmt.Printf("%-4d %-16v %-16v %-24.3f\n", p, tMC.Round(time.Millisecond), tGMH.Round(time.Millisecond), model)
	}
	fmt.Println("\nmultichain wall time flattens towards the burn-in floor;")
	fmt.Println("gmh keeps falling because burn-in itself is parallelized.")
}
