//go:build !race

package clitest

const raceEnabled = false
