package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// daemon is one live mpcgsd process under test: started on port 0, its
// base URL scraped from the advertised listening line.
type daemon struct {
	cmd  *exec.Cmd
	base string
	done chan error

	mu  sync.Mutex
	out bytes.Buffer
}

func startDaemon(t *testing.T, state string) *daemon {
	t.Helper()
	d := &daemon{done: make(chan error, 1)}
	d.cmd = exec.Command(filepath.Join(binDir, "mpcgsd"),
		"-addr", "127.0.0.1:0", "-state", state,
		"-workers", "2", "-quantum", "16", "-checkpoint-every", "64")
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = &stderrWriter{d: d}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.cmd.Process.Kill() })

	// The resolved address is printed before anything else; scrape it,
	// then keep draining output for post-mortem diagnostics.
	scanner := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(time.Minute, func() { _ = d.cmd.Process.Kill() })
	for scanner.Scan() {
		line := scanner.Text()
		d.mu.Lock()
		d.out.WriteString(line + "\n")
		d.mu.Unlock()
		if rest, ok := strings.CutPrefix(line, "mpcgsd: listening on "); ok {
			d.base = strings.TrimSpace(rest)
			break
		}
	}
	deadline.Stop()
	if d.base == "" {
		_ = d.cmd.Process.Kill()
		<-d.wait()
		t.Fatalf("mpcgsd never advertised its address:\n%s", d.output())
	}
	go func() {
		for scanner.Scan() {
			d.mu.Lock()
			d.out.WriteString(scanner.Text() + "\n")
			d.mu.Unlock()
		}
		d.done <- d.cmd.Wait()
	}()
	return d
}

type stderrWriter struct{ d *daemon }

func (w *stderrWriter) Write(p []byte) (int, error) {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	return w.d.out.Write(p)
}

func (d *daemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.out.String()
}

func (d *daemon) wait() chan error { return d.done }

// drain SIGTERMs the daemon and requires a clean (exit 0) drain.
func (d *daemon) drain(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("mpcgsd did not drain cleanly: %v\n%s", err, d.output())
		}
	case <-time.After(2 * time.Minute):
		_ = d.cmd.Process.Kill()
		t.Fatalf("mpcgsd hung on SIGTERM:\n%s", d.output())
	}
	if !strings.Contains(d.output(), "drained cleanly") {
		t.Fatalf("no drain confirmation in output:\n%s", d.output())
	}
}

// jobView is the slice of the daemon's job JSON the smoke test compares.
type jobView struct {
	ID       string   `json:"id"`
	Status   string   `json:"status"`
	Steps    int      `json:"steps"`
	Resumed  bool     `json:"resumed"`
	Error    string   `json:"error"`
	ThetaHex string   `json:"theta_hex"`
	TraceHex []string `json:"trace_hex"`
}

func submitJob(t *testing.T, base, name, phy string, seed uint64) string {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"name":          name,
		"tenant":        "smoke",
		"phylip":        phy,
		"theta":         1.0,
		"sampler":       "gmh",
		"burnin":        200,
		"samples":       6000,
		"em_iterations": 2,
		"seed":          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view jobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: HTTP %d: %s", name, resp.StatusCode, view.Error)
	}
	return view.ID
}

func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view jobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll %s: HTTP %d: %s", id, resp.StatusCode, view.Error)
	}
	return view
}

func waitJobDone(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for {
		view := getJob(t, base, id)
		switch view.Status {
		case "done":
			return view
		case "failed":
			t.Fatalf("job %s failed: %s", id, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after 5m", id, view.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// traceKey condenses the bit-exact trajectory of one finished job: the
// final theta and every per-iteration EM output, all in hex.
func traceKey(v jobView) string {
	return v.ThetaHex + "|" + strings.Join(v.TraceHex, ",")
}

// TestMpcgsdServiceSmoke is the CI drain/resume gate, end to end over the
// real binary and real HTTP: three jobs submitted to a fresh daemon, the
// daemon SIGTERMed mid-run, restarted on the same state directory, and
// every job's theta trajectory must match an uninterrupted daemon's run
// bit for bit.
func TestMpcgsdServiceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke")
	}
	// Three distinct datasets, generated through the real CLI pipeline.
	var phys []string
	for i := 0; i < 3; i++ {
		trees := run(t, "mssim", "", "-seed", fmt.Sprint(61+2*i), "8", "1")
		phys = append(phys, run(t, "seqgen", trees, "-l", "120", "-seed", fmt.Sprint(62+2*i)))
	}
	names := []string{"lineage-a", "lineage-b", "lineage-c"}
	seeds := []uint64{71, 72, 73}
	dir := t.TempDir()

	// Reference: an uninterrupted daemon runs all three to completion.
	ref := startDaemon(t, filepath.Join(dir, "ref"))
	want := make(map[string]string, 3)
	var ids []string
	for i, name := range names {
		ids = append(ids, submitJob(t, ref.base, name, phys[i], seeds[i]))
	}
	for _, id := range ids {
		want[id] = traceKey(waitJobDone(t, ref.base, id))
	}
	ref.drain(t)

	// Interrupted: same jobs on a fresh state directory, SIGTERM lands
	// while they are still running.
	state := filepath.Join(dir, "drain")
	d := startDaemon(t, state)
	for i, name := range names {
		submitJob(t, d.base, name, phys[i], seeds[i])
	}
	time.Sleep(700 * time.Millisecond)
	running := 0
	for _, id := range ids {
		switch getJob(t, d.base, id).Status {
		case "done", "failed":
		default:
			running++
		}
	}
	if running == 0 {
		t.Fatal("all jobs finished before the drain; grow the workload so SIGTERM lands mid-run")
	}
	d.drain(t)

	// Restart on the same state directory: every journaled job resumes
	// automatically and must land on the reference trajectory exactly.
	d2 := startDaemon(t, state)
	resumed := 0
	for _, id := range ids {
		view := waitJobDone(t, d2.base, id)
		if view.Resumed {
			resumed++
		}
		if got := traceKey(view); got != want[id] {
			t.Errorf("job %s: trajectory diverged after drain+restart\n got %s\nwant %s", id, got, want[id])
		}
	}
	if resumed == 0 {
		t.Error("no job reported resumed=true after restart")
	}
	d2.drain(t)
}
