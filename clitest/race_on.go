//go:build race

package clitest

// raceEnabled mirrors the harness's own -race flag so TestMain builds the
// CLIs under test with the race detector too.
const raceEnabled = true
