// Package clitest smoke-tests the command-line tools end to end: the
// mssim -> seqgen -> mpcgs pipeline the paper's §6.1 describes, exercised
// through the real binaries.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpcgs/internal/ckpt"
	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mpcgs-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	buildArgs := []string{"build"}
	if raceEnabled {
		// When the test harness runs under -race, the binaries under test
		// must too, or the smoke tests prove nothing about the daemon's
		// concurrency.
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", binDir, "./cmd/...")
	build := exec.Command("go", buildArgs...)
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		panic("building CLIs: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, name string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func runExpectError(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected failure, got success\n%s", name, args, out)
	}
	return string(out)
}

func TestMssimOutputsTrees(t *testing.T) {
	out := run(t, "mssim", "", "-seed", "5", "6", "3")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 trees, got %d:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.HasSuffix(l, ";") || !strings.Contains(l, ":") {
			t.Errorf("line does not look like a Newick tree: %q", l)
		}
	}
}

func TestMssimRejectsBadArgs(t *testing.T) {
	runExpectError(t, "mssim", "1", "1")
	runExpectError(t, "mssim", "-theta", "-1", "5", "1")
}

func TestSeqgenFromMssim(t *testing.T) {
	trees := run(t, "mssim", "", "-seed", "7", "8", "1")
	phy := run(t, "seqgen", trees, "-l", "120", "-seed", "9")
	if !strings.HasPrefix(phy, "8 120") {
		t.Fatalf("expected PHYLIP header '8 120', got:\n%s", phy[:min(len(phy), 80)])
	}
	if strings.Count(phy, "\n") < 8 {
		t.Fatalf("expected 8 sequence lines:\n%s", phy)
	}
}

func TestSeqgenModels(t *testing.T) {
	trees := run(t, "mssim", "", "-seed", "11", "4", "1")
	for _, model := range []string{"F84", "F81", "JC69"} {
		out := run(t, "seqgen", trees, "-l", "40", "-m", model, "-seed", "12")
		if !strings.HasPrefix(out, "4 40") {
			t.Errorf("model %s: bad output header", model)
		}
	}
	runExpectError(t, "seqgen", "-m", "BOGUS")
}

func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "13", "-theta", "1.0", "10", "1")
	phy := run(t, "seqgen", trees, "-l", "200", "-seed", "14")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mpcgs", "",
		"-burnin", "200", "-samples", "1500", "-em-iterations", "2", "-seed", "15",
		path, "0.5")
	if !strings.Contains(out, "theta = ") {
		t.Fatalf("no estimate in output:\n%s", out)
	}
	if !strings.Contains(out, "diagnostics:") {
		t.Errorf("no diagnostics in output:\n%s", out)
	}
}

func TestMpcgsGrowthFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "17", "8", "1")
	phy := run(t, "seqgen", trees, "-l", "150", "-seed", "18")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mpcgs", "", "-q", "-growth",
		"-burnin", "100", "-samples", "1000", "-em-iterations", "1", "-seed", "19",
		path, "1.0")
	if !strings.Contains(out, "growth:") {
		t.Fatalf("no growth estimate in output:\n%s", out)
	}
}

func TestMpcgsSamplerFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "21", "6", "1")
	phy := run(t, "seqgen", trees, "-l", "100", "-seed", "22")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sampler := range []string{"gmh", "mh", "multichain"} {
		out := run(t, "mpcgs", "", "-q", "-sampler", sampler,
			"-burnin", "50", "-samples", "400", "-em-iterations", "1", "-seed", "23",
			path, "1.0")
		if !strings.Contains(out, "theta = ") {
			t.Errorf("sampler %s: no estimate:\n%s", sampler, out)
		}
	}
}

func TestMpcgsRejectsBadInput(t *testing.T) {
	runExpectError(t, "mpcgs", "/nonexistent.phy", "1.0")
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.phy")
	if err := os.WriteFile(path, []byte("not phylip"), 0o644); err != nil {
		t.Fatal(err)
	}
	runExpectError(t, "mpcgs", path, "1.0")
	runExpectError(t, "mpcgs", path, "-2")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMpcgsBayesianFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "25", "8", "1")
	phy := run(t, "seqgen", trees, "-l", "120", "-seed", "26")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mpcgs", "", "-q", "-bayesian",
		"-burnin", "200", "-samples", "1500", "-seed", "27",
		path, "1.0")
	if !strings.Contains(out, "posterior theta") || !strings.Contains(out, "95% CI") {
		t.Fatalf("no posterior summary in output:\n%s", out)
	}
}

func TestPaperbenchBurninExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	out := run(t, "paperbench", "", "-experiment", "burnin", "-scale", "quick")
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "effective sample size") {
		t.Fatalf("burnin experiment output unexpected:\n%s", out)
	}
}

func TestMpcgsBatchManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	dir := t.TempDir()
	makeData := func(name string, mssimSeed, seqgenSeed string) string {
		trees := run(t, "mssim", "", "-seed", mssimSeed, "8", "1")
		phy := run(t, "seqgen", trees, "-l", "120", "-seed", seqgenSeed)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	makeData("a.phy", "31", "32")
	makeData("b.phy", "33", "34")
	manifest := `{
  "defaults": {"theta": 1.0, "burnin": 100, "samples": 800, "em_iterations": 1, "seed": 7},
  "jobs": [
    {"name": "a", "phylip": "a.phy"},
    {"name": "b", "phylip": "b.phy", "seed": 8}
  ]
}`
	mpath := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(mpath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mpcgs", "", "-workers", "2", "-batch", mpath)
	for _, want := range []string{"batch of 2 jobs", "job a", "job b", "theta = ", "2 ok, 0 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("batch output missing %q:\n%s", want, out)
		}
	}

	// The batch estimate must equal the standalone run of the same job:
	// same data, seed, sampler settings and worker count.
	solo := run(t, "mpcgs", "", "-q", "-workers", "2",
		"-burnin", "100", "-samples", "800", "-em-iterations", "1", "-seed", "7",
		filepath.Join(dir, "a.phy"), "1.0")
	soloTheta := ""
	for _, line := range strings.Split(solo, "\n") {
		if rest, ok := strings.CutPrefix(line, "theta = "); ok {
			soloTheta = strings.TrimSpace(rest)
		}
	}
	if soloTheta == "" {
		t.Fatalf("no standalone estimate:\n%s", solo)
	}
	batchTheta := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "job a") {
			fields := strings.Fields(line)
			// "job a theta = X (...)"
			for i, f := range fields {
				if f == "=" && i+1 < len(fields) {
					batchTheta = fields[i+1]
				}
			}
		}
	}
	if batchTheta != soloTheta {
		t.Errorf("batch theta %q differs from standalone %q", batchTheta, soloTheta)
	}
}

func TestMpcgsBatchRejectsBadManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"jobs": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	runExpectError(t, "mpcgs", "-batch", path)
	runExpectError(t, "mpcgs", "-batch", filepath.Join(dir, "absent.json"))
}

func TestPaperbenchBatchExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	out := run(t, "paperbench", "", "-experiment", "batch", "-scale", "quick", "-workers", "2")
	if !strings.Contains(out, "Batch mode: multi-tenant scheduler") || !strings.Contains(out, "speedup") {
		t.Fatalf("batch experiment output unexpected:\n%s", out)
	}
}

func TestPaperbenchGuardRefusesVacuousRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	// The burnin experiment measures no speedup points, so guarding it
	// must fail loudly rather than pass a check of nothing.
	out := runExpectError(t, "paperbench",
		"-experiment", "burnin", "-scale", "quick", "-guard", "../EXPERIMENTS.md")
	if !strings.Contains(out, "no measured point") {
		t.Fatalf("vacuous guard run did not explain itself:\n%s", out)
	}
}

// extractTheta pulls the final "theta = X" estimate out of CLI output.
func extractTheta(t *testing.T, out string) string {
	t.Helper()
	theta := ""
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "theta = "); ok {
			theta = strings.TrimSpace(rest)
		}
	}
	if theta == "" {
		t.Fatalf("no estimate in output:\n%s", out)
	}
	return theta
}

// TestMpcgsCheckpointSigintResume is the end-to-end kill/resume test: a
// single-run estimation is interrupted with SIGINT (which writes a final
// checkpoint before exit), then resumed with -resume, and the final
// estimate must equal the uninterrupted run's exactly.
func TestMpcgsCheckpointSigintResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "41", "8", "1")
	phy := run(t, "seqgen", trees, "-l", "120", "-seed", "42")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-q", "-workers", "2",
		"-burnin", "200", "-samples", "12000", "-em-iterations", "2", "-seed", "43"}

	// Uninterrupted reference.
	ref := extractTheta(t, run(t, "mpcgs", "", append(args, path, "1.0")...))

	// Interrupted run: SIGINT lands mid-estimation; the process must exit
	// on its own (cancellation, final checkpoint, results printed).
	ckptDir := filepath.Join(dir, "ckpt")
	killArgs := append([]string{"-checkpoint", ckptDir, "-checkpoint-every", "200"}, args...)
	cmd := exec.Command(filepath.Join(binDir, "mpcgs"), append(killArgs, path, "1.0")...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	_ = cmd.Process.Signal(os.Interrupt) // may race with a fast finish; both are fine
	err := cmd.Wait()
	if _, statErr := os.Stat(filepath.Join(ckptDir, "batch.json")); statErr != nil {
		t.Fatalf("no checkpoint file after interrupt (run err: %v): %v", err, statErr)
	}

	// Resume to completion (repeat in the unlikely event the first resume
	// is itself too slow — it is not interrupted, so once is enough).
	out := run(t, "mpcgs", "", append(append([]string{"-resume", ckptDir}, args...), path, "1.0")...)
	if got := extractTheta(t, out); got != ref {
		t.Fatalf("resumed estimate %s != uninterrupted %s\n%s", got, ref, out)
	}
}

// TestMpcgsBatchResumeSkipsFinished: resuming a completed batch re-reports
// every job from the checkpoint without re-running it.
func TestMpcgsBatchResumeSkipsFinished(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	dir := t.TempDir()
	trees := run(t, "mssim", "", "-seed", "45", "6", "1")
	phy := run(t, "seqgen", trees, "-l", "100", "-seed", "46")
	if err := os.WriteFile(filepath.Join(dir, "a.phy"), []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := `{
  "defaults": {"theta": 1.0, "burnin": 50, "samples": 400, "em_iterations": 1, "seed": 9},
  "jobs": [{"name": "a", "phylip": "a.phy"}]
}`
	mpath := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(mpath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpt")
	first := run(t, "mpcgs", "", "-workers", "2", "-batch", mpath, "-checkpoint", ckptDir)
	second := run(t, "mpcgs", "", "-workers", "2", "-batch", mpath, "-resume", ckptDir)
	if !strings.Contains(second, "[restored from checkpoint]") {
		t.Fatalf("resumed batch re-ran the finished job:\n%s", second)
	}
	// "job a                theta = X (...)": the estimate is the field
	// after the "=".
	jobTheta := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "job a") {
				fields := strings.Fields(line)
				for i, f := range fields {
					if f == "=" && i+1 < len(fields) {
						return fields[i+1]
					}
				}
			}
		}
		return ""
	}
	want, got := jobTheta(first), jobTheta(second)
	if want == "" || got != want {
		t.Fatalf("restored theta %q != original %q", got, want)
	}
}

// TestMpcgsHeatedSwapReport: a heated run prints the per-pair swap-rate
// ladder report, and -adapt-ladder labels it as adapted.
func TestMpcgsHeatedSwapReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "51", "6", "1")
	phy := run(t, "seqgen", trees, "-l", "80", "-seed", "52")
	path := filepath.Join(t.TempDir(), "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-sampler", "heated", "-chains", "3", "-workers", "2",
		"-burnin", "60", "-samples", "300", "-em-iterations", "1", "-seed", "53"}
	out := run(t, "mpcgs", "", append(args, path, "1.0")...)
	if !strings.Contains(out, "ladder (geometric, 3 rungs)") || !strings.Contains(out, "pair 0-1") {
		t.Fatalf("heated run printed no swap report:\n%s", out)
	}
	out = run(t, "mpcgs", "", append(append([]string{"-adapt-ladder", "-swap-window", "8"}, args...), path, "1.0")...)
	if !strings.Contains(out, "ladder (adapted, ") || !strings.Contains(out, "updates, 3 rungs)") ||
		!strings.Contains(out, "pair 1-2") {
		t.Fatalf("adaptive heated run printed no adapted swap report:\n%s", out)
	}
	// Tempering flags on a non-heated sampler die with a clear error
	// instead of being silently dropped.
	bad := runExpectError(t, "mpcgs", "-sampler", "gmh", "-adapt-ladder", path, "1.0")
	if !strings.Contains(bad, "only meaningful with -sampler heated") {
		t.Fatalf("gmh -adapt-ladder error unclear:\n%s", bad)
	}
	// Nonsense tempering flags die with a clear error.
	bad = runExpectError(t, "mpcgs", append([]string{"-sampler", "heated", "-max-temp", "0.5"}, path, "1.0")...)
	if !strings.Contains(bad, "MaxTemp") {
		t.Fatalf("bad -max-temp error unclear:\n%s", bad)
	}
}

// TestMpcgsInspect: -inspect prints per-job status from a checkpoint
// directory without resuming — finished jobs with their estimates, and a
// paused adaptive heated job with its temperature ladder. The paused
// entry is constructed from a real engine snapshot so the test is
// deterministic (no SIGINT races).
func TestMpcgsInspect(t *testing.T) {
	dir := t.TempDir()

	// A real mid-flight adaptive heated snapshot for the paused job.
	dev := device.Serial()
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, 55)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := core.InitialTree(aln, 1.0, 56)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewHeated(eval, dev, 3)
	h.Adapt = true
	h.MaxTemp = 16
	h.SwapWindow = 8
	em, err := core.StartEM(h, init, core.EMConfig{
		InitialTheta: 1.0, Iterations: 2, Burnin: 40, Samples: 120, Seed: 57,
	}, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 75; i++ {
		if err := em.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := em.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	batch := &ckpt.Batch{Jobs: []ckpt.BatchJob{
		{Name: "finished", Fingerprint: "fp1", Status: ckpt.StatusDone, Steps: 320,
			Theta: "0x1.8p+00"},
		{Name: "broken", Fingerprint: "fp2", Status: ckpt.StatusFailed, Error: "pathological theta"},
		{Name: "midflight", Fingerprint: "fp3", Status: ckpt.StatusPaused, Steps: 75,
			EM: ckpt.EncodeEM(snap)},
	}}
	if err := ckpt.Save(dir, batch); err != nil {
		t.Fatal(err)
	}

	out := run(t, "mpcgs", "", "-inspect", dir)
	for _, want := range []string{
		"format v3, 3 jobs",
		"finished", "done", "theta = 1.5",
		"broken", "failed", "pathological theta",
		"midflight", "paused", "sampler heated at transition 75",
		"ladder (adaptive, window 8",
		"pair 0-1", "pair 1-2", "swap rate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-inspect output missing %q:\n%s", want, out)
		}
	}
	// Inspect is read-only and refuses positional arguments.
	if out := runExpectError(t, "mpcgs", "-inspect", dir, "extra.phy", "1.0"); !strings.Contains(out, "usage") {
		t.Fatalf("inspect with positional args: %s", out)
	}
	if out := runExpectError(t, "mpcgs", "-inspect", filepath.Join(dir, "absent")); out == "" {
		t.Fatal("inspect of a missing directory succeeded")
	}
}

// TestExamplesBuild keeps every example main compiling.
func TestExamplesBuild(t *testing.T) {
	cmd := exec.Command("go", "build", "-o", t.TempDir(), "./examples/...")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("examples do not build: %v\n%s", err, out)
	}
}
