// Package clitest smoke-tests the command-line tools end to end: the
// mssim -> seqgen -> mpcgs pipeline the paper's §6.1 describes, exercised
// through the real binaries.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mpcgs-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	build := exec.Command("go", "build", "-o", binDir, "./cmd/...")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		panic("building CLIs: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, name string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func runExpectError(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected failure, got success\n%s", name, args, out)
	}
	return string(out)
}

func TestMssimOutputsTrees(t *testing.T) {
	out := run(t, "mssim", "", "-seed", "5", "6", "3")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 trees, got %d:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.HasSuffix(l, ";") || !strings.Contains(l, ":") {
			t.Errorf("line does not look like a Newick tree: %q", l)
		}
	}
}

func TestMssimRejectsBadArgs(t *testing.T) {
	runExpectError(t, "mssim", "1", "1")
	runExpectError(t, "mssim", "-theta", "-1", "5", "1")
}

func TestSeqgenFromMssim(t *testing.T) {
	trees := run(t, "mssim", "", "-seed", "7", "8", "1")
	phy := run(t, "seqgen", trees, "-l", "120", "-seed", "9")
	if !strings.HasPrefix(phy, "8 120") {
		t.Fatalf("expected PHYLIP header '8 120', got:\n%s", phy[:min(len(phy), 80)])
	}
	if strings.Count(phy, "\n") < 8 {
		t.Fatalf("expected 8 sequence lines:\n%s", phy)
	}
}

func TestSeqgenModels(t *testing.T) {
	trees := run(t, "mssim", "", "-seed", "11", "4", "1")
	for _, model := range []string{"F84", "F81", "JC69"} {
		out := run(t, "seqgen", trees, "-l", "40", "-m", model, "-seed", "12")
		if !strings.HasPrefix(out, "4 40") {
			t.Errorf("model %s: bad output header", model)
		}
	}
	runExpectError(t, "seqgen", "-m", "BOGUS")
}

func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "13", "-theta", "1.0", "10", "1")
	phy := run(t, "seqgen", trees, "-l", "200", "-seed", "14")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mpcgs", "",
		"-burnin", "200", "-samples", "1500", "-em-iterations", "2", "-seed", "15",
		path, "0.5")
	if !strings.Contains(out, "theta = ") {
		t.Fatalf("no estimate in output:\n%s", out)
	}
	if !strings.Contains(out, "diagnostics:") {
		t.Errorf("no diagnostics in output:\n%s", out)
	}
}

func TestMpcgsGrowthFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "17", "8", "1")
	phy := run(t, "seqgen", trees, "-l", "150", "-seed", "18")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mpcgs", "", "-q", "-growth",
		"-burnin", "100", "-samples", "1000", "-em-iterations", "1", "-seed", "19",
		path, "1.0")
	if !strings.Contains(out, "growth:") {
		t.Fatalf("no growth estimate in output:\n%s", out)
	}
}

func TestMpcgsSamplerFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "21", "6", "1")
	phy := run(t, "seqgen", trees, "-l", "100", "-seed", "22")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sampler := range []string{"gmh", "mh", "multichain"} {
		out := run(t, "mpcgs", "", "-q", "-sampler", sampler,
			"-burnin", "50", "-samples", "400", "-em-iterations", "1", "-seed", "23",
			path, "1.0")
		if !strings.Contains(out, "theta = ") {
			t.Errorf("sampler %s: no estimate:\n%s", sampler, out)
		}
	}
}

func TestMpcgsRejectsBadInput(t *testing.T) {
	runExpectError(t, "mpcgs", "/nonexistent.phy", "1.0")
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.phy")
	if err := os.WriteFile(path, []byte("not phylip"), 0o644); err != nil {
		t.Fatal(err)
	}
	runExpectError(t, "mpcgs", path, "1.0")
	runExpectError(t, "mpcgs", path, "-2")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMpcgsBayesianFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	trees := run(t, "mssim", "", "-seed", "25", "8", "1")
	phy := run(t, "seqgen", trees, "-l", "120", "-seed", "26")
	dir := t.TempDir()
	path := filepath.Join(dir, "data.phy")
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mpcgs", "", "-q", "-bayesian",
		"-burnin", "200", "-samples", "1500", "-seed", "27",
		path, "1.0")
	if !strings.Contains(out, "posterior theta") || !strings.Contains(out, "95% CI") {
		t.Fatalf("no posterior summary in output:\n%s", out)
	}
}

func TestPaperbenchBurninExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	out := run(t, "paperbench", "", "-experiment", "burnin", "-scale", "quick")
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "effective sample size") {
		t.Fatalf("burnin experiment output unexpected:\n%s", out)
	}
}

// TestExamplesBuild keeps every example main compiling.
func TestExamplesBuild(t *testing.T) {
	cmd := exec.Command("go", "build", "-o", t.TempDir(), "./examples/...")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("examples do not build: %v\n%s", err, out)
	}
}
